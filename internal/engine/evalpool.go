package engine

import (
	"sync"

	"closnet/internal/codec"
	"closnet/internal/core"
	"closnet/internal/obs"
)

// maxPooledTopologies bounds the number of distinct topology keys the
// evaluator pool retains. Past the cap the oldest key is dropped FIFO —
// its evaluators are garbage, and the next request for that topology
// pays one rebuild. Batch workloads sweep assignments over a handful of
// topologies, so a small cap captures all the reuse.
const maxPooledTopologies = 64

// maxPooledPerKey bounds the idle evaluators kept per topology: the
// steady state needs about one per concurrent batch worker touching the
// topology, and extras past the cap are dropped on put.
const maxPooledPerKey = 16

// evalPool shares prepared core.BlockEvaluators across requests whose
// scenarios have the same codec.TopologyHash: the same (Clos,
// Collection) pair up to canonical order, differing only in demands or
// assignment. Building an evaluator walks every flow's paths and
// allocates the SoA lanes; batch items sweeping assignments over one
// topology would otherwise rebuild identical state per item.
//
// A BlockEvaluator is NOT safe for concurrent use (it water-fills on
// shared scratch), so each key holds a free list: concurrent batch
// workers check out distinct instances and return them. A plain
// mutex-guarded stack, not a sync.Pool — reuse must be deterministic
// (sync.Pool sheds entries under GC pressure and randomly in race
// builds), and the evaluators are cheap enough to keep resident.
type evalPool struct {
	mu   sync.Mutex
	free map[[32]byte][]*core.BlockEvaluator
	// leased counts evaluators currently checked out per key. A key with
	// outstanding leases is never evicted: evicting it would orphan the
	// leases' put — the evaluator silently dropped, the next request
	// paying a rebuild the pool exists to avoid.
	leased map[[32]byte]int
	order  [][32]byte // insertion order, for FIFO eviction

	builds *obs.Counter // evaluators constructed (pool misses)
	reuses *obs.Counter // evaluators checked out of a free list (hits)
}

func newEvalPool(o *obs.Obs) *evalPool {
	reg := o.Registry()
	return &evalPool{
		free:   make(map[[32]byte][]*core.BlockEvaluator),
		leased: make(map[[32]byte]int),
		builds: reg.Counter("engine.evaluator_builds"),
		reuses: reg.Counter("engine.evaluator_reuses"),
	}
}

// get pops an idle evaluator for key, or nil, and records the lease. On
// first sight of a key it claims a slot in the FIFO order, evicting the
// oldest UNLEASED key past the cap; when every resident key is leased,
// the table temporarily exceeds the cap instead (bounded by the number
// of concurrent leases, which admission control already bounds).
func (p *evalPool) get(key [32]byte) *core.BlockEvaluator {
	p.mu.Lock()
	defer p.mu.Unlock()
	stack, ok := p.free[key]
	if !ok {
		if len(p.order) >= maxPooledTopologies {
			for i, old := range p.order {
				if p.leased[old] == 0 {
					delete(p.free, old)
					p.order = append(p.order[:i], p.order[i+1:]...)
					break
				}
			}
		}
		p.free[key] = nil
		p.order = append(p.order, key)
		p.leased[key]++
		return nil
	}
	p.leased[key]++
	if n := len(stack); n > 0 {
		bev := stack[n-1]
		stack[n-1] = nil
		p.free[key] = stack[:n-1]
		return bev
	}
	return nil
}

// put releases a lease and returns the evaluator to its key's free
// list. A full list drops it — the evaluator is plain memory, nothing
// to close.
func (p *evalPool) put(key [32]byte, bev *core.BlockEvaluator) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := p.leased[key]; n <= 1 {
		delete(p.leased, key)
	} else {
		p.leased[key] = n - 1
	}
	stack, ok := p.free[key]
	if !ok || len(stack) >= maxPooledPerKey {
		return
	}
	p.free[key] = append(stack, bev)
}

// acquire checks an evaluator for canon's topology out of the pool,
// building (and instrumenting) a fresh one on a miss. The returned put
// func returns the evaluator for reuse; callers must not touch the
// evaluator or any scratch-aliasing BlockResult views after put.
func (p *evalPool) acquire(canon *codec.Scenario, o *obs.Obs) (*core.BlockEvaluator, func(), error) {
	key, err := codec.TopologyHash(canon)
	if err != nil {
		return nil, nil, err
	}
	if bev := p.get(key); bev != nil {
		p.reuses.Inc()
		return bev, func() { p.put(key, bev) }, nil
	}
	c, fs, _, _, err := canon.Build()
	if err != nil {
		return nil, nil, err
	}
	bev, err := core.NewBlockEvaluator(c, fs)
	if err != nil {
		return nil, nil, err
	}
	bev.Instrument(o)
	p.builds.Inc()
	return bev, func() { p.put(key, bev) }, nil
}
