package engine

import (
	"testing"

	"closnet/internal/codec"
	"closnet/internal/core"
)

// TestEvalPoolEvictionSkipsLeasedKey: flooding the pool with more than
// maxPooledTopologies distinct keys while a lease is outstanding must
// not evict the leased key — its put would silently drop the evaluator
// and the next acquire would rebuild, which is exactly what the pool
// exists to avoid.
func TestEvalPoolEvictionSkipsLeasedKey(t *testing.T) {
	p := newEvalPool(nil)
	scen := &codec.Scenario{
		Tors: 2, Servers: 1, Middles: 2,
		Flows: []codec.FlowJSON{{SrcSwitch: 1, SrcServer: 1, DstSwitch: 2, DstServer: 1}},
	}
	bevA, putA, err := p.acquire(scen, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Flood: enough distinct synthetic keys to wrap the FIFO several
	// times over. Each is leased by get and released by put, so they are
	// all evictable; only the outstanding lease on A's key must pin it.
	for i := 0; i < 3*maxPooledTopologies; i++ {
		var k [32]byte
		k[0], k[1], k[2] = 0xee, byte(i), byte(i>>8)
		if got := p.get(k); got != nil {
			t.Fatalf("fresh synthetic key %d returned an evaluator", i)
		}
		p.put(k, &core.BlockEvaluator{})
	}

	putA()
	bevA2, putA2, err := p.acquire(scen, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer putA2()
	if bevA2 != bevA {
		t.Fatal("leased key was evicted: re-acquire rebuilt instead of reusing the returned evaluator")
	}

	p.mu.Lock()
	resident, leases := len(p.order), len(p.leased)
	p.mu.Unlock()
	if resident > maxPooledTopologies {
		t.Fatalf("pool retains %d keys after all leases released, cap is %d", resident, maxPooledTopologies)
	}
	if leases != 1 {
		t.Fatalf("lease table has %d entries with one lease outstanding", leases)
	}
}

// TestEvalPoolAllLeasedExceedsCapTemporarily: when every resident key
// has an outstanding lease, a new key is admitted without eviction (the
// table exceeds the cap, bounded by the concurrent lease count) and the
// overage drains as leases are released.
func TestEvalPoolAllLeasedExceedsCapTemporarily(t *testing.T) {
	p := newEvalPool(nil)
	keys := make([][32]byte, maxPooledTopologies+4)
	for i := range keys {
		keys[i][0], keys[i][1] = 0xaa, byte(i)
		p.get(keys[i]) // lease and keep
	}
	p.mu.Lock()
	resident := len(p.order)
	p.mu.Unlock()
	if resident != len(keys) {
		t.Fatalf("pool holds %d keys with %d concurrent leases, want all admitted", resident, len(keys))
	}
	for i := range keys {
		p.put(keys[i], &core.BlockEvaluator{})
	}
	// Past-cap admissions with everything released: eviction resumes.
	var extra [32]byte
	extra[0] = 0xbb
	p.get(extra)
	p.mu.Lock()
	resident = len(p.order)
	p.mu.Unlock()
	if resident > len(keys)+1 {
		t.Fatalf("pool kept growing: %d keys", resident)
	}
}
