package engine

import (
	"context"
	"fmt"

	"closnet/internal/obs"
)

// BatchResult is one slot of a RunBatch outcome: the response of the
// request at the same index, or the error that stopped it. Exactly one
// of the fields is set.
type BatchResult struct {
	Resp *Response
	Err  error
}

// Runner computes one request of a batch; i is the request's index in
// the batch, for transports that keep per-item side state. Engine.Run
// is the default; transports substitute their own pipeline (the HTTP
// server routes each item through its result cache and singleflight
// group) so batch items behave exactly like single calls.
type Runner func(ctx context.Context, i int, req Request) (*Response, error)

// RunBatch computes the requests with bounded fan-out: at most workers
// computations in flight at once (workers <= 0 means len(reqs)), every
// item run through run (nil = e.Run), results in request order
// regardless of completion order. One failing item does not stop the
// others — its slot carries the error. ctx cancellation drains the
// fan-out: items not yet started return ctx.Err() without computing.
func (e *Engine) RunBatch(ctx context.Context, reqs []Request, workers int, run Runner) []BatchResult {
	if run == nil {
		run = func(ctx context.Context, _ int, req Request) (*Response, error) { return e.Run(ctx, req) }
	}
	if workers <= 0 || workers > len(reqs) {
		workers = len(reqs)
	}
	results := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	e.Obs().Journal().Emit("engine.batch", obs.F{"items": len(reqs), "workers": workers})

	// Work-stealing off a channel of indices keeps the result ordering
	// trivially deterministic: slot i is written only by the goroutine
	// that claimed index i.
	idx := make(chan int)
	done := make(chan struct{})
	// runOne isolates one item so a panicking Runner is recovered into
	// the item's error slot instead of killing the worker goroutine —
	// a dead worker would never signal done and the collector below
	// would block forever.
	runOne := func(i int) (res BatchResult) {
		defer func() {
			if r := recover(); r != nil {
				res = BatchResult{Err: fmt.Errorf("engine: batch item %d: runner panicked: %v", i, r)}
			}
		}()
		if err := ctx.Err(); err != nil {
			return BatchResult{Err: err}
		}
		resp, err := run(ctx, i, reqs[i])
		if err != nil {
			return BatchResult{Err: err}
		}
		return BatchResult{Resp: resp}
	}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range idx {
				results[i] = runOne(i)
				done <- struct{}{}
			}
		}()
	}
	go func() {
		for i := range reqs {
			idx <- i
		}
		close(idx)
	}()
	for range reqs {
		<-done
	}
	return results
}
