package engine

import (
	"context"
	"encoding/hex"
	"errors"

	"closnet/internal/codec"
	"closnet/internal/core"
	"closnet/internal/doom"
	"closnet/internal/obs"
	"closnet/internal/rational"
	"closnet/internal/search"
)

// evalResponse is the evaluate op's schema: the max-min fair allocation
// of the canonical scenario under its embedded routing (uniform middle
// 1 when absent), in canonical flow order.
type evalResponse struct {
	Hash       string   `json:"hash"`
	Flows      int      `json:"flows"`
	Assignment []int    `json:"assignment"`
	Rates      []string `json:"rates"`
	Throughput string   `json:"throughput"`
}

func computeEvaluate(ctx context.Context, e *Engine, canon *codec.Scenario, hash [32]byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Requests sharing a topology hash share one prepared block
	// evaluator: a pool hit skips canon.Build() and the SoA lane
	// construction entirely, and only the assignment below varies.
	bev, put, err := e.evals.acquire(canon, e.opts.Obs)
	if err != nil {
		return nil, err
	}
	defer put()
	ma := core.MiddleAssignment(canon.Assignment)
	if ma == nil {
		ma = core.UniformAssignment(len(canon.Flows), 1)
	}
	sp, _ := obs.StartSpan(ctx, "core.block_fill")
	res, err := bev.EvalBlock(ma, 1)
	sp.Attr("block", 1).End()
	if err != nil {
		return nil, err
	}
	a := res.Alloc(0)
	resp := evalResponse{
		Hash:       hex.EncodeToString(hash[:]),
		Flows:      len(canon.Flows),
		Assignment: []int(ma),
		Rates:      codec.RateStrings(a),
		Throughput: rational.String(core.Throughput(a)),
	}
	return codec.MarshalBody(resp)
}

// searchResponse is the search:* ops' schema: the optimal routing under
// the requested objective, in canonical flow order. The assignment and
// rates of a :pruned op are bit-identical to the exhaustive op's; the
// strategy marker and the states count (bound plus leaf evaluations
// instead of enumerated states) are what distinguish the bodies.
type searchResponse struct {
	Hash       string   `json:"hash"`
	Objective  string   `json:"objective"`
	Strategy   string   `json:"strategy,omitempty"`
	Assignment []int    `json:"assignment"`
	Rates      []string `json:"rates"`
	Throughput string   `json:"throughput"`
	MinRatio   string   `json:"minRatio,omitempty"`
	States     int      `json:"states"`
}

// searchOp builds the compute function of one search objective, in the
// exhaustive or the pruned branch-and-bound strategy. The search:*
// registry entries are instances of this closure, so adding an
// objective is one constructor call in New.
func searchOp(objective string, pruned bool) computeFunc {
	return func(ctx context.Context, e *Engine, canon *codec.Scenario, hash [32]byte) ([]byte, error) {
		c, fs, demands, _, err := canon.Build()
		if err != nil {
			return nil, err
		}
		opts := e.SearchOptions(ctx)
		opts.Pruned = pruned
		resp := searchResponse{Hash: hex.EncodeToString(hash[:]), Objective: objective}
		if pruned {
			resp.Strategy = "pruned"
		}
		switch objective {
		case "lex":
			res, err := search.LexMaxMin(c, fs, opts)
			if err != nil {
				return nil, err
			}
			resp.Assignment, resp.Rates = []int(res.Assignment), codec.RateStrings(res.Allocation)
			resp.Throughput = rational.String(core.Throughput(res.Allocation))
			resp.States = res.States
		case "throughput":
			res, err := search.ThroughputMaxMin(c, fs, opts)
			if err != nil {
				return nil, err
			}
			resp.Assignment, resp.Rates = []int(res.Assignment), codec.RateStrings(res.Allocation)
			resp.Throughput = rational.String(core.Throughput(res.Allocation))
			resp.States = res.States
		case "relative":
			if demands == nil {
				return nil, errors.New("objective \"relative\" needs scenario demands as targets")
			}
			res, err := search.RelativeMaxMin(c, fs, demands, opts)
			if err != nil {
				return nil, err
			}
			resp.Assignment, resp.Rates = []int(res.Assignment), codec.RateStrings(res.Allocation)
			resp.Throughput = rational.String(core.Throughput(res.Allocation))
			resp.MinRatio = rational.String(res.MinRatio)
			resp.States = res.States
		}
		return codec.MarshalBody(resp)
	}
}

// doomResponse is the doom op's schema: Algorithm 1's routing and its
// max-min fair allocation, in canonical flow order.
type doomResponse struct {
	Hash       string   `json:"hash"`
	Assignment []int    `json:"assignment"`
	DoomMiddle int      `json:"doomMiddle"`
	Matched    int      `json:"matched"`
	Rates      []string `json:"rates"`
	Throughput string   `json:"throughput"`
}

func computeDoom(ctx context.Context, e *Engine, canon *codec.Scenario, hash [32]byte) ([]byte, error) {
	c, fs, _, _, err := canon.Build()
	if err != nil {
		return nil, err
	}
	sp, ctx := obs.StartSpan(ctx, "doom.route")
	res, err := doom.RouteCtx(ctx, c, fs, doom.LeastLoaded(), e.opts.Obs)
	sp.End()
	if err != nil {
		return nil, err
	}
	a, err := core.ClosMaxMinFairCtx(ctx, c, fs, res.Assignment)
	if err != nil {
		return nil, err
	}
	resp := doomResponse{
		Hash:       hex.EncodeToString(hash[:]),
		Assignment: []int(res.Assignment),
		DoomMiddle: res.DoomMiddle,
		Matched:    res.MatchedCount(),
		Rates:      codec.RateStrings(a),
		Throughput: rational.String(core.Throughput(a)),
	}
	return codec.MarshalBody(resp)
}
