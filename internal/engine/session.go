package engine

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"closnet/internal/codec"
	"closnet/internal/core"
	"closnet/internal/obs"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// The session op family. These ops are stateful — a session holds a
// live scenario server-side and mutates it one delta at a time through
// a core.IncrementalEvaluator — so they are served through the typed
// Sessions API (Engine.Sessions()), not the Prepare/Compute registry:
// Prepare rejects them, and nothing about them is cacheable or
// coalescable. They appear in Ops() so transports can enumerate the
// full surface.
const (
	OpSessionOpen  = "session:open"
	OpSessionDelta = "session:delta"
	OpSessionClose = "session:close"
)

// Session table defaults.
const (
	// DefaultMaxSessions bounds the number of concurrently open
	// sessions.
	DefaultMaxSessions = 256
	// DefaultSessionTTL is the idle lifetime of a session: one untouched
	// for longer is evicted lazily on the next table access.
	DefaultSessionTTL = 5 * time.Minute
)

// Session-table sentinel errors; transports map them to status codes
// (429 and 404 respectively).
var (
	ErrSessionTableFull = errors.New("engine: session table full")
	ErrSessionNotFound  = errors.New("engine: session not found or expired")
)

// sessionFlow is one live flow of a session: its stable wire ID, its
// JSON form (for rebuilding the canonical scenario), its current
// middle, and its handle inside the incremental evaluator.
type sessionFlow struct {
	id     int
	fj     codec.FlowJSON
	middle int
	handle core.FlowID
}

// Session is one open scenario being mutated by deltas. All access goes
// through its mutex: deltas on one session serialize, sessions mutate
// independently.
type Session struct {
	mu       sync.Mutex
	id       string
	family   string
	tors     int
	servers  int
	middles  int
	fab      topology.Fabric
	ie       *core.IncrementalEvaluator
	flows    []sessionFlow // insertion order, parallel to the evaluator's
	nextFlow int
	seq      int
	lastUsed time.Time
}

// SessionResponse reports a session's state after open or a delta. The
// scenario view is canonical: Flows lists the session flow IDs in
// canonical scenario order, Assignment and Rates are parallel to it,
// and Hash is the codec.CanonicalHash of the current state — equal to
// the hash a one-shot evaluate of the same end state reports, which is
// what makes a replayed delta sequence directly comparable to
// /v1/evaluate.
type SessionResponse struct {
	Session    string   `json:"session"`
	Op         string   `json:"op"`
	Seq        int      `json:"seq"`
	Hash       string   `json:"hash"`
	Flows      []int    `json:"flows"`
	Assignment []int    `json:"assignment,omitempty"`
	Rates      []string `json:"rates"`
	Throughput string   `json:"throughput"`
	// Arrived is the session flow ID assigned by an arrive delta.
	Arrived *int `json:"arrived,omitempty"`
}

// SessionCloseResponse acknowledges a close.
type SessionCloseResponse struct {
	Session string `json:"session"`
	Closed  bool   `json:"closed"`
	Deltas  int    `json:"deltas"`
}

// SessionStats is the session gauge block of /v1/stats.
type SessionStats struct {
	Open     int   `json:"open"`
	Capacity int   `json:"capacity"`
	TTLMs    int64 `json:"ttlMs"`
	Opened   int64 `json:"opened"`
	Closed   int64 `json:"closed"`
	Expired  int64 `json:"expired"`
	Deltas   int64 `json:"deltas"`
}

// Sessions is the bounded, TTL-evicting session table. Safe for
// concurrent use.
type Sessions struct {
	mu    sync.Mutex
	table map[string]*Session
	max   int
	ttl   time.Duration
	now   func() time.Time

	opened, closed, expired, deltas int64

	o        *obs.Obs
	cOpened  *obs.Counter
	cClosed  *obs.Counter
	cExpired *obs.Counter
	cDeltas  *obs.Counter
	gOpen    *obs.Gauge
}

func newSessions(opts Options) *Sessions {
	max := opts.MaxSessions
	if max <= 0 {
		max = DefaultMaxSessions
	}
	ttl := opts.SessionTTL
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	reg := opts.Obs.Registry()
	return &Sessions{
		table:    make(map[string]*Session),
		max:      max,
		ttl:      ttl,
		now:      time.Now,
		o:        opts.Obs,
		cOpened:  reg.Counter("engine.sessions.opened"),
		cClosed:  reg.Counter("engine.sessions.closed"),
		cExpired: reg.Counter("engine.sessions.expired"),
		cDeltas:  reg.Counter("engine.sessions.deltas"),
		gOpen:    reg.Gauge("engine.sessions.open"),
	}
}

// SetClock injects the time source — the TTL tests' hook. Not for
// production use.
func (ss *Sessions) SetClock(now func() time.Time) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.now = now
}

// pruneLocked evicts every session idle past the TTL. Callers hold
// ss.mu.
func (ss *Sessions) pruneLocked() {
	cutoff := ss.now().Add(-ss.ttl)
	for id, s := range ss.table {
		s.mu.Lock()
		stale := s.lastUsed.Before(cutoff)
		s.mu.Unlock()
		if stale {
			delete(ss.table, id)
			ss.expired++
			ss.cExpired.Inc()
			ss.o.Journal().Emit("engine.session_expired", obs.F{"session": id})
		}
	}
	ss.gOpen.Set(int64(len(ss.table)))
}

// Open admits a new session holding the scenario's flow set. The
// scenario is canonicalized first: session flow IDs 0..n-1 are assigned
// in canonical order, so they match the positions a one-shot evaluate
// of the same scenario reports. Demands are dropped — a session tracks
// routing and allocation, and demands are not part of the evaluate
// state the hashes commit to. A missing assignment defaults to middle 1
// for every flow, mirroring the evaluate op.
func (ss *Sessions) Open(ctx context.Context, scen *codec.Scenario) (*SessionResponse, error) {
	sp, _ := obs.StartSpan(ctx, "session.open")
	defer sp.End()
	if scen == nil {
		return nil, fmt.Errorf("engine: session open without a scenario")
	}
	stripped := *scen
	stripped.Demands = nil
	canon, err := codec.Canonical(&stripped)
	if err != nil {
		return nil, err
	}
	fab, err := topology.BuildFamily(canon.Topology, canon.Tors, canon.Servers, canon.Middles)
	if err != nil {
		return nil, err
	}
	s := &Session{
		family:  canon.Topology,
		tors:    canon.Tors,
		servers: canon.Servers,
		middles: canon.Middles,
		fab:     fab,
		ie:      core.NewIncrementalEvaluator(fab),
	}
	s.ie.Instrument(ss.o)
	for i, fj := range canon.Flows {
		m := 1
		if canon.Assignment != nil {
			m = canon.Assignment[i]
		}
		f := core.Flow{
			Src: fab.Source(fj.SrcSwitch, fj.SrcServer),
			Dst: fab.Dest(fj.DstSwitch, fj.DstServer),
		}
		h, err := s.ie.Arrive(f, m)
		if err != nil {
			return nil, fmt.Errorf("engine: session open flow %d: %w", i, err)
		}
		s.flows = append(s.flows, sessionFlow{id: s.nextFlow, fj: fj, middle: m, handle: h})
		s.nextFlow++
	}

	idBytes := make([]byte, 8)
	if _, err := rand.Read(idBytes); err != nil {
		return nil, fmt.Errorf("engine: session id: %w", err)
	}
	s.id = hex.EncodeToString(idBytes)

	ss.mu.Lock()
	ss.pruneLocked()
	if len(ss.table) >= ss.max {
		ss.mu.Unlock()
		return nil, ErrSessionTableFull
	}
	s.lastUsed = ss.now()
	ss.table[s.id] = s
	ss.opened++
	ss.cOpened.Inc()
	ss.gOpen.Set(int64(len(ss.table)))
	ss.mu.Unlock()

	sp.Attr("session", s.id).Attr("flows", len(s.flows))
	ss.o.Journal().Emit("engine.session_opened", obs.F{"session": s.id, "flows": len(s.flows)})
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.responseLocked(OpSessionOpen, nil)
}

// lookup fetches a live session and touches its idle timer.
func (ss *Sessions) lookup(id string) (*Session, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.pruneLocked()
	s, ok := ss.table[id]
	if !ok {
		return nil, ErrSessionNotFound
	}
	s.mu.Lock()
	s.lastUsed = ss.now()
	s.mu.Unlock()
	return s, nil
}

// Delta applies one mutation to a session and reports the resulting
// state. Structural validation failures (unknown op, out-of-range
// indices) and semantic ones (no live flow with the ID) leave the
// session unchanged.
func (ss *Sessions) Delta(ctx context.Context, id string, d *codec.Delta) (*SessionResponse, error) {
	sp, _ := obs.StartSpan(ctx, "session.delta")
	defer sp.End()
	s, err := ss.lookup(id)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(s.tors, s.servers, s.middles); err != nil {
		return nil, err
	}
	sp.Attr("session", id).Attr("op", d.Op)

	s.mu.Lock()
	defer s.mu.Unlock()
	var arrived *int
	switch d.Op {
	case codec.DeltaArrive:
		f := core.Flow{
			Src: s.fab.Source(d.Flow.SrcSwitch, d.Flow.SrcServer),
			Dst: s.fab.Dest(d.Flow.DstSwitch, d.Flow.DstServer),
		}
		h, err := s.ie.Arrive(f, d.Middle)
		if err != nil {
			return nil, fmt.Errorf("engine: arrive: %w", err)
		}
		fid := s.nextFlow
		s.nextFlow++
		s.flows = append(s.flows, sessionFlow{id: fid, fj: *d.Flow, middle: d.Middle, handle: h})
		arrived = &fid
	case codec.DeltaDepart:
		i, err := s.findLocked(d.ID)
		if err != nil {
			return nil, err
		}
		if err := s.ie.Depart(s.flows[i].handle); err != nil {
			return nil, fmt.Errorf("engine: depart: %w", err)
		}
		s.flows = append(s.flows[:i], s.flows[i+1:]...)
	case codec.DeltaReroute:
		i, err := s.findLocked(d.ID)
		if err != nil {
			return nil, err
		}
		if err := s.ie.Reroute(s.flows[i].handle, d.Middle); err != nil {
			return nil, fmt.Errorf("engine: reroute: %w", err)
		}
		s.flows[i].middle = d.Middle
	}
	s.seq++
	ss.mu.Lock()
	ss.deltas++
	ss.mu.Unlock()
	ss.cDeltas.Inc()
	return s.responseLocked(OpSessionDelta, arrived)
}

// Close removes a session. Closing twice (or an expired session)
// returns ErrSessionNotFound.
func (ss *Sessions) Close(ctx context.Context, id string) (*SessionCloseResponse, error) {
	sp, _ := obs.StartSpan(ctx, "session.close")
	defer sp.End()
	ss.mu.Lock()
	s, ok := ss.table[id]
	if ok {
		delete(ss.table, id)
		ss.closed++
		ss.cClosed.Inc()
	}
	ss.gOpen.Set(int64(len(ss.table)))
	ss.mu.Unlock()
	if !ok {
		return nil, ErrSessionNotFound
	}
	sp.Attr("session", id)
	ss.o.Journal().Emit("engine.session_closed", obs.F{"session": id, "deltas": s.seq})
	s.mu.Lock()
	defer s.mu.Unlock()
	return &SessionCloseResponse{Session: id, Closed: true, Deltas: s.seq}, nil
}

// Stats snapshots the table for /v1/stats.
func (ss *Sessions) Stats() SessionStats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.pruneLocked()
	return SessionStats{
		Open:     len(ss.table),
		Capacity: ss.max,
		TTLMs:    ss.ttl.Milliseconds(),
		Opened:   ss.opened,
		Closed:   ss.closed,
		Expired:  ss.expired,
		Deltas:   ss.deltas,
	}
}

// findLocked resolves a session flow ID to its index. Callers hold
// s.mu.
func (s *Session) findLocked(id int) (int, error) {
	for i := range s.flows {
		if s.flows[i].id == id {
			return i, nil
		}
	}
	return -1, fmt.Errorf("engine: no live session flow with id %d", id)
}

// responseLocked rebuilds the canonical scenario view of the current
// state and reads the rates off the evaluator. Callers hold s.mu.
func (s *Session) responseLocked(op string, arrived *int) (*SessionResponse, error) {
	scen := &codec.Scenario{
		Topology: s.family,
		Tors:     s.tors,
		Servers:  s.servers,
		Middles:  s.middles,
	}
	if n := len(s.flows); n > 0 {
		scen.Flows = make([]codec.FlowJSON, n)
		scen.Assignment = make([]int, n)
		for i, sf := range s.flows {
			scen.Flows[i] = sf.fj
			scen.Assignment[i] = sf.middle
		}
	}
	canon, hash, err := codec.CanonicalHash(scen)
	if err != nil {
		return nil, err
	}
	perm, err := codec.CanonicalPerm(scen)
	if err != nil {
		return nil, err
	}
	resp := &SessionResponse{
		Session:    s.id,
		Op:         op,
		Seq:        s.seq,
		Hash:       hex.EncodeToString(hash[:]),
		Flows:      make([]int, len(perm)),
		Assignment: canon.Assignment,
		Rates:      make([]string, len(perm)),
		Throughput: "0",
		Arrived:    arrived,
	}
	alloc := make(rational.Vec, len(perm))
	for i, fi := range perm {
		sf := s.flows[fi]
		r, err := s.ie.Rate(sf.handle)
		if err != nil {
			return nil, fmt.Errorf("engine: session state diverged: %w", err)
		}
		resp.Flows[i] = sf.id
		resp.Rates[i] = rational.String(r)
		alloc[i] = r
	}
	if len(alloc) > 0 {
		resp.Throughput = rational.String(core.Throughput(alloc))
	}
	return resp, nil
}
