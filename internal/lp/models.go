package lp

import (
	"fmt"
	"math/big"

	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// PathSets lists, for each flow of a collection, the candidate paths over
// which the (splittable) flow may be divided.
type PathSets [][]topology.Path

// ClosAllPaths returns, for each flow, its n candidate paths in C_n (one
// per middle switch).
func ClosAllPaths(c topology.Fabric, fs core.Collection) (PathSets, error) {
	ps := make(PathSets, len(fs))
	for i, f := range fs {
		ps[i] = make([]topology.Path, c.Size())
		for m := 1; m <= c.Size(); m++ {
			p, err := c.Path(f.Src, f.Dst, m)
			if err != nil {
				return nil, fmt.Errorf("flow %d: %w", i, err)
			}
			ps[i][m-1] = p
		}
	}
	return ps, nil
}

// MacroPaths returns the unique path of each flow in the macro-switch.
func MacroPaths(ms *topology.MacroSwitch, fs core.Collection) (PathSets, error) {
	ps := make(PathSets, len(fs))
	for i, f := range fs {
		p, err := ms.Path(f.Src, f.Dst)
		if err != nil {
			return nil, fmt.Errorf("flow %d: %w", i, err)
		}
		ps[i] = []topology.Path{p}
	}
	return ps, nil
}

// varLayout maps (flow, path) pairs to dense LP variable indices.
type varLayout struct {
	offset []int // per flow
	total  int
}

func layout(paths PathSets) varLayout {
	l := varLayout{offset: make([]int, len(paths))}
	for i, ps := range paths {
		l.offset[i] = l.total
		l.total += len(ps)
	}
	return l
}

// linkConstraints builds one LE constraint per finite link traversed by
// at least one candidate path: total rate over traversing path variables
// is at most the link capacity. numVars is the total variable count of
// the surrounding problem (path variables may be followed by extras such
// as the water level t).
func linkConstraints(net *topology.Network, paths PathSets, l varLayout, numVars int) []Constraint {
	perLink := make(map[topology.LinkID][]int)
	for fi, ps := range paths {
		for pi, p := range ps {
			v := l.offset[fi] + pi
			for _, lid := range p {
				perLink[lid] = append(perLink[lid], v)
			}
		}
	}
	var cons []Constraint
	for _, link := range net.Links() {
		if link.Unbounded {
			continue
		}
		vars, ok := perLink[link.ID]
		if !ok {
			continue
		}
		coeffs := make([]*big.Rat, numVars)
		for _, v := range vars {
			if coeffs[v] == nil {
				coeffs[v] = rational.Zero()
			}
			coeffs[v].Add(coeffs[v], rational.One())
		}
		cons = append(cons, Constraint{Coeffs: coeffs, Rel: LE, RHS: rational.Copy(link.Capacity)})
	}
	return cons
}

// flowTotalCoeffs returns a coefficient vector selecting Σ_p x_{f,p}.
func flowTotalCoeffs(l varLayout, paths PathSets, f, numVars int) []*big.Rat {
	coeffs := make([]*big.Rat, numVars)
	for pi := range paths[f] {
		coeffs[l.offset[f]+pi] = rational.One()
	}
	return coeffs
}

// SplittableMaxThroughput solves the splittable (classic network flow)
// maximum-throughput LP: maximize the total rate over all flows, where
// each flow may be divided arbitrarily over its candidate paths, subject
// to link capacities. It returns the optimum and the per-flow totals.
func SplittableMaxThroughput(net *topology.Network, fs core.Collection, paths PathSets) (*big.Rat, rational.Vec, error) {
	if len(paths) != len(fs) {
		return nil, nil, fmt.Errorf("lp: %d path sets for %d flows", len(paths), len(fs))
	}
	l := layout(paths)
	obj := make([]*big.Rat, l.total)
	for j := range obj {
		obj[j] = rational.One()
	}
	p := Problem{
		NumVars:     l.total,
		Objective:   obj,
		Constraints: linkConstraints(net, paths, l, l.total),
	}
	sol, err := Solve(p)
	if err != nil {
		return nil, nil, err
	}
	if sol.Status != Optimal {
		return nil, nil, fmt.Errorf("lp: max throughput LP is %v", sol.Status)
	}
	rates := flowTotals(l, paths, sol.X)
	return sol.Objective, rates, nil
}

func flowTotals(l varLayout, paths PathSets, x []*big.Rat) rational.Vec {
	rates := rational.NewVec(len(paths))
	for fi := range paths {
		for pi := range paths[fi] {
			rates[fi].Add(rates[fi], x[l.offset[fi]+pi])
		}
	}
	return rates
}

// SplittableMaxMin computes the splittable max-min fair allocation by
// progressive filling with exact LPs: repeatedly maximize the common rate
// t of all unfrozen flows, then freeze exactly the flows whose rate
// cannot exceed t (determined by one extra LP per candidate flow).
//
// For Clos networks with all n paths as candidates, the result matches
// the macro-switch max-min fair rates — the "demand satisfaction"
// property of §1 that unsplittable flows break.
func SplittableMaxMin(net *topology.Network, fs core.Collection, paths PathSets) (rational.Vec, error) {
	if len(paths) != len(fs) {
		return nil, fmt.Errorf("lp: %d path sets for %d flows", len(paths), len(fs))
	}
	nf := len(fs)
	rates := make(rational.Vec, nf)
	if nf == 0 {
		return rates, nil
	}
	for _, ps := range paths {
		if len(ps) == 0 {
			return nil, fmt.Errorf("lp: a flow has no candidate paths")
		}
	}
	l := layout(paths)
	frozen := make([]bool, nf)
	remaining := nf

	for remaining > 0 {
		tVar := l.total // water level variable
		numVars := l.total + 1
		cons := linkConstraints(net, paths, l, numVars)
		for f := 0; f < nf; f++ {
			coeffs := flowTotalCoeffs(l, paths, f, numVars)
			if frozen[f] {
				cons = append(cons, Constraint{Coeffs: coeffs, Rel: EQ, RHS: rational.Copy(rates[f])})
			} else {
				coeffs[tVar] = rational.Int(-1)
				cons = append(cons, Constraint{Coeffs: coeffs, Rel: GE, RHS: rational.Zero()})
			}
		}
		obj := make([]*big.Rat, numVars)
		obj[tVar] = rational.One()
		sol, err := Solve(Problem{NumVars: numVars, Objective: obj, Constraints: cons})
		if err != nil {
			return nil, err
		}
		if sol.Status != Optimal {
			return nil, fmt.Errorf("lp: fill LP is %v", sol.Status)
		}
		level := sol.Objective

		// Freeze flows that cannot exceed the level while everyone else
		// keeps at least the level.
		froze := 0
		for f0 := 0; f0 < nf; f0++ {
			if frozen[f0] {
				continue
			}
			capped, err := flowCapped(net, fs, paths, l, frozen, rates, level, f0)
			if err != nil {
				return nil, err
			}
			if capped {
				frozen[f0] = true
				rates[f0] = rational.Copy(level)
				remaining--
				froze++
			}
		}
		if froze == 0 {
			return nil, fmt.Errorf("lp: progressive filling stalled at level %s", rational.String(level))
		}
	}
	return rates, nil
}

// flowCapped reports whether flow f0's rate cannot exceed level while all
// frozen flows keep their rates and all unfrozen flows get at least
// level.
func flowCapped(net *topology.Network, fs core.Collection, paths PathSets, l varLayout, frozen []bool, rates rational.Vec, level *big.Rat, f0 int) (bool, error) {
	numVars := l.total
	cons := linkConstraints(net, paths, l, numVars)
	for f := range fs {
		coeffs := flowTotalCoeffs(l, paths, f, numVars)
		if frozen[f] {
			cons = append(cons, Constraint{Coeffs: coeffs, Rel: EQ, RHS: rational.Copy(rates[f])})
		} else {
			cons = append(cons, Constraint{Coeffs: coeffs, Rel: GE, RHS: rational.Copy(level)})
		}
	}
	obj := flowTotalCoeffs(l, paths, f0, numVars)
	sol, err := Solve(Problem{NumVars: numVars, Objective: obj, Constraints: cons})
	if err != nil {
		return false, err
	}
	switch sol.Status {
	case Unbounded:
		return false, nil
	case Optimal:
		return sol.Objective.Cmp(level) <= 0, nil
	default:
		return false, fmt.Errorf("lp: cap-test LP is %v", sol.Status)
	}
}
