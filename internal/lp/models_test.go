package lp

import (
	"math/rand"
	"testing"

	"closnet/internal/core"
	"closnet/internal/matching"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// example23Clos builds the Example 2.3 collection over C_2.
func example23Clos(c *topology.Clos) core.Collection {
	return core.NewCollection(
		c.Source(1, 2), c.Dest(1, 2),
		c.Source(1, 2), c.Dest(2, 1),
		c.Source(1, 2), c.Dest(2, 2),
		c.Source(2, 1), c.Dest(2, 1),
		c.Source(2, 2), c.Dest(2, 2),
		c.Source(1, 1), c.Dest(1, 1),
	)
}

func TestSplittableMaxThroughputMacroExample33(t *testing.T) {
	ms := topology.MustMacroSwitch(1)
	fs := core.NewCollection(
		ms.Source(1, 1), ms.Dest(1, 1),
		ms.Source(2, 1), ms.Dest(2, 1),
		ms.Source(2, 1), ms.Dest(1, 1),
	)
	paths, err := MacroPaths(ms, fs)
	if err != nil {
		t.Fatal(err)
	}
	total, rates, err := SplittableMaxThroughput(ms.Network(), fs, paths)
	if err != nil {
		t.Fatal(err)
	}
	// Maximum throughput across MS_1 is 2 (Lemma 3.2 / Example 3.3); the
	// splittable LP relaxation is bounded by the same server-link cuts.
	if total.Cmp(rational.Int(2)) != 0 {
		t.Errorf("total = %s, want 2", rational.String(total))
	}
	if rates.Sum().Cmp(total) != 0 {
		t.Error("per-flow totals do not add to the optimum")
	}
}

// TestSplittableThroughputMatchesMatching checks LP/matching agreement on
// random macro-switch instances: the bipartite b-matching polytope for
// unit node capacities is integral, so the splittable LP optimum equals
// the maximum matching size of G^MS.
func TestSplittableThroughputMatchesMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(2) + 1
		ms := topology.MustMacroSwitch(n)
		numServers := 2 * n * n
		var fs core.Collection
		g := matching.Graph{NumLeft: numServers, NumRight: numServers}
		for e := 0; e < rng.Intn(8)+1; e++ {
			si, sj := rng.Intn(2*n)+1, rng.Intn(n)+1
			di, dj := rng.Intn(2*n)+1, rng.Intn(n)+1
			fs = fs.Add(ms.Source(si, sj), ms.Dest(di, dj), 1)
			g.Edges = append(g.Edges, matching.Edge{
				Left:  (si-1)*n + sj - 1,
				Right: (di-1)*n + dj - 1,
			})
		}
		paths, err := MacroPaths(ms, fs)
		if err != nil {
			t.Fatal(err)
		}
		total, _, err := SplittableMaxThroughput(ms.Network(), fs, paths)
		if err != nil {
			t.Fatal(err)
		}
		m, err := matching.MaxMatching(g)
		if err != nil {
			t.Fatal(err)
		}
		if total.Cmp(rational.Int(int64(len(m)))) != 0 {
			t.Fatalf("trial %d: LP total %s != matching size %d", trial, rational.String(total), len(m))
		}
	}
}

// TestSplittableMaxMinMatchesWaterfillOnFixedPaths: with a single
// candidate path per flow, the progressive-filling LP must agree with the
// combinatorial water-filler.
func TestSplittableMaxMinMatchesWaterfillOnFixedPaths(t *testing.T) {
	ms := topology.MustMacroSwitch(2)
	fs := core.NewCollection(
		ms.Source(1, 2), ms.Dest(1, 2),
		ms.Source(1, 2), ms.Dest(2, 1),
		ms.Source(1, 2), ms.Dest(2, 2),
		ms.Source(2, 1), ms.Dest(2, 1),
		ms.Source(2, 2), ms.Dest(2, 2),
		ms.Source(1, 1), ms.Dest(1, 1),
	)
	paths, err := MacroPaths(ms, fs)
	if err != nil {
		t.Fatal(err)
	}
	lpRates, err := SplittableMaxMin(ms.Network(), fs, paths)
	if err != nil {
		t.Fatal(err)
	}
	wfRates, err := core.MacroMaxMinFair(ms, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !lpRates.Equal(wfRates) {
		t.Errorf("LP rates %v != waterfill rates %v", lpRates, wfRates)
	}
}

// TestDemandSatisfactionSplittableClos is experiment P1's core assertion:
// with splittable flows (all n paths available), the max-min fair rates
// in C_n equal the macro-switch rates exactly — the inside of the network
// can be abstracted away (§1, "demand satisfaction").
func TestDemandSatisfactionSplittableClos(t *testing.T) {
	c := topology.MustClos(2)
	ms := topology.MustMacroSwitch(2)
	fs := example23Clos(c)
	fsMacro := core.NewCollection(
		ms.Source(1, 2), ms.Dest(1, 2),
		ms.Source(1, 2), ms.Dest(2, 1),
		ms.Source(1, 2), ms.Dest(2, 2),
		ms.Source(2, 1), ms.Dest(2, 1),
		ms.Source(2, 2), ms.Dest(2, 2),
		ms.Source(1, 1), ms.Dest(1, 1),
	)

	paths, err := ClosAllPaths(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	closRates, err := SplittableMaxMin(c.Network(), fs, paths)
	if err != nil {
		t.Fatal(err)
	}
	macroRates, err := core.MacroMaxMinFair(ms, fsMacro)
	if err != nil {
		t.Fatal(err)
	}
	if !closRates.Equal(macroRates) {
		t.Errorf("splittable Clos rates %v != macro rates %v", closRates, macroRates)
	}
}

func TestSplittableMaxMinEmptyAndErrors(t *testing.T) {
	c := topology.MustClos(1)
	rates, err := SplittableMaxMin(c.Network(), nil, nil)
	if err != nil || len(rates) != 0 {
		t.Errorf("empty: rates=%v err=%v", rates, err)
	}
	fs := core.NewCollection(c.Source(1, 1), c.Dest(1, 1))
	if _, err := SplittableMaxMin(c.Network(), fs, PathSets{}); err == nil {
		t.Error("mismatched path sets accepted")
	}
	if _, err := SplittableMaxMin(c.Network(), fs, PathSets{{}}); err == nil {
		t.Error("flow without candidate paths accepted")
	}
	if _, _, err := SplittableMaxThroughput(c.Network(), fs, PathSets{}); err == nil {
		t.Error("mismatched path sets accepted by throughput model")
	}
}

func TestClosAllPathsAndMacroPathsErrors(t *testing.T) {
	c := topology.MustClos(1)
	ms := topology.MustMacroSwitch(1)
	badFlow := core.Collection{{Src: c.Input(1), Dst: c.Dest(1, 1)}}
	if _, err := ClosAllPaths(c, badFlow); err == nil {
		t.Error("non-source origin accepted")
	}
	badFlow2 := core.Collection{{Src: ms.Input(1), Dst: ms.Dest(1, 1)}}
	if _, err := MacroPaths(ms, badFlow2); err == nil {
		t.Error("non-source origin accepted by macro paths")
	}
}

// TestSplittableMaxMinSharedBottleneck exercises multi-round progressive
// filling: two flows share a source link, a third is free until its
// destination link.
func TestSplittableMaxMinSharedBottleneck(t *testing.T) {
	ms := topology.MustMacroSwitch(1)
	fs := core.NewCollection(
		ms.Source(1, 1), ms.Dest(1, 1), // shares s1.1 with next
		ms.Source(1, 1), ms.Dest(2, 1),
		ms.Source(2, 1), ms.Dest(2, 1), // then capped by t2.1
	)
	paths, err := MacroPaths(ms, fs)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := SplittableMaxMin(ms.Network(), fs, paths)
	if err != nil {
		t.Fatal(err)
	}
	want := rational.VecOf(1, 2, 1, 2, 1, 2)
	if !rates.Equal(want) {
		t.Errorf("rates = %v, want %v", rates, want)
	}
}
