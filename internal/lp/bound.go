// Bound extraction for the branch-and-bound search: the splittable
// relaxation restricted to a partial (suffix-fixed) middle assignment,
// with machine-checked dual certificates.
//
// The key inequality is weak LP duality: for the maximization problem
// max c·x s.t. Ax {≤,≥,=} b, x ≥ 0, any dual-feasible multiplier
// vector y (y_i ≥ 0 on ≤ rows, y_i ≤ 0 on ≥ rows, free on = rows, and
// Aᵀy ≥ c componentwise) proves c·x ≤ y·b for every primal-feasible x.
// CertifyDual verifies those inequalities with exact rational
// arithmetic, so the bound y·b the search prunes on does not depend on
// the simplex implementation being correct — an incorrect solver can
// cost pruning power, never correctness. Dual feasibility is also what
// makes parent bounds inheritable: fixing one more flow only removes
// primal columns, which only removes dual constraints, so a parent's
// certificate stays feasible for every child.
package lp

import (
	"fmt"
	"math/big"

	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

// PrefixPaths builds the candidate path sets of the partial assignment
// in which flows [fixedFrom, len(fs)) are routed per ma — a single
// path each — and flows [0, fixedFrom) remain splittable over all n
// middle switches. The splittable optima over these path sets upper-
// bound every unsplittable completion of the partial assignment. Only
// ma[fixedFrom:] is read.
func PrefixPaths(c topology.Fabric, fs core.Collection, ma core.MiddleAssignment, fixedFrom int) (PathSets, error) {
	if len(ma) != len(fs) {
		return nil, fmt.Errorf("lp: assignment has %d middles for %d flows", len(ma), len(fs))
	}
	if fixedFrom < 0 || fixedFrom > len(fs) {
		return nil, fmt.Errorf("lp: fixedFrom %d out of range [0, %d]", fixedFrom, len(fs))
	}
	ps := make(PathSets, len(fs))
	for fi, f := range fs {
		if fi < fixedFrom {
			ps[fi] = make([]topology.Path, c.Size())
			for m := 1; m <= c.Size(); m++ {
				p, err := c.Path(f.Src, f.Dst, m)
				if err != nil {
					return nil, fmt.Errorf("lp: flow %d: %w", fi, err)
				}
				ps[fi][m-1] = p
			}
			continue
		}
		p, err := c.Path(f.Src, f.Dst, ma[fi])
		if err != nil {
			return nil, fmt.Errorf("lp: flow %d: %w", fi, err)
		}
		ps[fi] = []topology.Path{p}
	}
	return ps, nil
}

// ThroughputProblem builds the splittable maximum-throughput LP over
// the given candidate paths: maximize the total rate, subject to link
// capacities and x ≥ 0. It is the problem SplittableMaxThroughput
// solves, exported so callers can certify its dual solutions.
func ThroughputProblem(net *topology.Network, fs core.Collection, paths PathSets) (Problem, error) {
	if len(paths) != len(fs) {
		return Problem{}, fmt.Errorf("lp: %d path sets for %d flows", len(paths), len(fs))
	}
	l := layout(paths)
	obj := make([]*big.Rat, l.total)
	for j := range obj {
		obj[j] = rational.One()
	}
	return Problem{
		NumVars:     l.total,
		Objective:   obj,
		Constraints: linkConstraints(net, paths, l, l.total),
	}, nil
}

// CertifyDual verifies that duals is a feasible dual solution of the
// maximization problem p and returns the weak-duality bound Σ y_i·b_i,
// which upper-bounds c·x for every primal-feasible x ≥ 0. It fails if
// a sign condition or a dual constraint Σ_i y_i·a_ij ≥ c_j is violated
// — every check is exact rational arithmetic, independent of how the
// duals were produced.
func CertifyDual(p Problem, duals []*big.Rat) (*big.Rat, error) {
	if len(duals) != len(p.Constraints) {
		return nil, fmt.Errorf("lp: %d duals for %d constraints", len(duals), len(p.Constraints))
	}
	for i, y := range duals {
		if y == nil {
			return nil, fmt.Errorf("lp: dual %d is nil", i)
		}
		switch p.Constraints[i].Rel {
		case LE:
			if y.Sign() < 0 {
				return nil, fmt.Errorf("lp: dual %d = %s < 0 on a ≤ row", i, rational.String(y))
			}
		case GE:
			if y.Sign() > 0 {
				return nil, fmt.Errorf("lp: dual %d = %s > 0 on a ≥ row", i, rational.String(y))
			}
		}
	}
	// Dual constraints: for each primal variable j, Σ_i y_i·a_ij ≥ c_j.
	col := new(big.Rat)
	for j := 0; j < p.NumVars; j++ {
		col.SetInt64(0)
		for i, c := range p.Constraints {
			a := coeff(c.Coeffs, j)
			if a.Sign() != 0 {
				col.Add(col, rational.Mul(duals[i], a))
			}
		}
		if col.Cmp(coeff(p.Objective, j)) < 0 {
			return nil, fmt.Errorf("lp: dual constraint %d violated: %s < %s",
				j, rational.String(col), rational.String(coeff(p.Objective, j)))
		}
	}
	bound := new(big.Rat)
	for i, c := range p.Constraints {
		bound.Add(bound, rational.Mul(duals[i], c.RHS))
	}
	return bound, nil
}

// SplittableThroughputBound solves the splittable maximum-throughput LP
// over the candidate paths and returns a *certified* upper bound on the
// total throughput of any (splittable or unsplittable) routing confined
// to those paths: the simplex optimum's dual solution is re-verified
// with CertifyDual and the weak-duality value Σ y·b is returned. At
// optimality strong duality makes the certified bound equal the primal
// optimum, so no pruning power is lost by certifying.
func SplittableThroughputBound(net *topology.Network, fs core.Collection, paths PathSets) (*big.Rat, error) {
	p, err := ThroughputProblem(net, fs, paths)
	if err != nil {
		return nil, err
	}
	sol, err := Solve(p)
	if err != nil {
		return nil, err
	}
	if sol.Status != Optimal {
		return nil, fmt.Errorf("lp: throughput bound LP is %v", sol.Status)
	}
	bound, err := CertifyDual(p, sol.Duals)
	if err != nil {
		return nil, fmt.Errorf("lp: dual certificate rejected: %w", err)
	}
	return bound, nil
}
