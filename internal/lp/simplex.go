// Package lp implements an exact linear-programming solver over rationals
// (dense two-phase simplex with Bland's anti-cycling rule) together with
// the LP models of the splittable-flow relaxations that the paper
// contrasts against: splittable maximum throughput and splittable max-min
// fairness via progressive filling.
//
// Exactness matters: the paper's gaps are exact rational quantities
// (e.g. 1 + 1/(k+1) versus 2), and the splittable baseline is expected to
// match the macro-switch rates *exactly* (demand satisfaction, §1), which
// only a rational solver can certify.
package lp

import (
	"errors"
	"fmt"
	"math/big"

	"closnet/internal/rational"
)

// Rel is the relation of a linear constraint.
type Rel int

// Constraint relations.
const (
	LE Rel = iota + 1 // Σ coeffs·x ≤ rhs
	GE                // Σ coeffs·x ≥ rhs
	EQ                // Σ coeffs·x = rhs
)

// Constraint is a single linear constraint over the problem variables.
// Coeffs is indexed by variable; missing trailing entries are zero.
type Constraint struct {
	Coeffs []*big.Rat
	Rel    Rel
	RHS    *big.Rat
}

// Problem is a linear program in the form: maximize Objective·x subject
// to the constraints and x ≥ 0.
type Problem struct {
	NumVars     int
	Objective   []*big.Rat // indexed by variable; missing entries are zero
	Constraints []Constraint
}

// Status reports the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve. X, Objective and Duals are only
// meaningful when Status == Optimal.
type Solution struct {
	Status    Status
	Objective *big.Rat
	X         []*big.Rat
	// Duals holds one multiplier per constraint, oriented for the
	// original relations of a maximization problem: ≥ 0 for LE rows,
	// ≤ 0 for GE rows, free for EQ rows. At optimality, strong duality
	// holds: Σ_i Duals[i]·RHS[i] == Objective. (For constraints dropped
	// as redundant during phase 1, the multiplier is reported as the
	// reduced cost of their artificial column, which preserves the
	// strong-duality identity.)
	Duals []*big.Rat
}

// ErrBadProblem is returned for structurally invalid problems.
var ErrBadProblem = errors.New("lp: invalid problem")

// Solve maximizes the problem exactly. It always terminates (Bland's
// rule) and distinguishes optimal, infeasible and unbounded outcomes.
func Solve(p Problem) (*Solution, error) {
	n := p.NumVars
	if n < 0 || len(p.Objective) > n {
		return nil, fmt.Errorf("%w: %d variables, %d objective coefficients", ErrBadProblem, n, len(p.Objective))
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > n {
			return nil, fmt.Errorf("%w: constraint %d has %d coefficients for %d variables", ErrBadProblem, i, len(c.Coeffs), n)
		}
		if c.Rel != LE && c.Rel != GE && c.Rel != EQ {
			return nil, fmt.Errorf("%w: constraint %d has relation %d", ErrBadProblem, i, c.Rel)
		}
		if c.RHS == nil {
			return nil, fmt.Errorf("%w: constraint %d has nil RHS", ErrBadProblem, i)
		}
	}

	t := newTableau(p)
	if !t.phase1() {
		return &Solution{Status: Infeasible}, nil
	}
	t.dropArtificials()
	if !t.phase2(p) {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]*big.Rat, n)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for i, bv := range t.basis {
		if bv < n {
			x[bv] = rational.Copy(t.rhs(i))
		}
	}
	obj := new(big.Rat)
	for j := 0; j < n && j < len(p.Objective); j++ {
		if p.Objective[j] != nil {
			obj.Add(obj, rational.Mul(p.Objective[j], x[j]))
		}
	}
	return &Solution{Status: Optimal, Objective: obj, X: x, Duals: t.duals()}, nil
}

// duals reads the constraint multipliers off the final reduced-cost row:
// for a transformed row whose auxiliary column (slack or artificial) has
// coefficient +e_i, the multiplier is the column's reduced cost; rows
// that were sign-flipped during RHS normalization flip their multiplier
// back to the original orientation.
func (t *tableau) duals() []*big.Rat {
	ys := make([]*big.Rat, len(t.dualCols))
	for i, dc := range t.dualCols {
		y := rational.Copy(t.z[dc.col])
		if dc.flip {
			y.Neg(y)
		}
		ys[i] = y
	}
	return ys
}

// tableau is a dense simplex tableau. Columns are: n structural
// variables, then slack/surplus variables, then artificial variables,
// then the RHS. rows[i] is a constraint row; z is the reduced-cost row of
// the current objective.
type tableau struct {
	rows  [][]*big.Rat
	z     []*big.Rat
	basis []int // basic variable per row
	nCols int   // total columns excluding RHS
	nArt  int   // artificial variable count
	artLo int   // first artificial column

	// dualCols maps each original constraint to the auxiliary column
	// whose final reduced cost is its dual multiplier, and records
	// whether the row was sign-flipped during RHS normalization.
	dualCols []dualCol
}

type dualCol struct {
	col  int
	flip bool
}

func coeff(cs []*big.Rat, j int) *big.Rat {
	if j < len(cs) && cs[j] != nil {
		return cs[j]
	}
	return new(big.Rat)
}

func newTableau(p Problem) *tableau {
	n := p.NumVars
	m := len(p.Constraints)

	// Count auxiliary columns. Every row gets its RHS normalized to be
	// non-negative first (flipping the relation if needed); then LE rows
	// get a slack (which can serve as the initial basis), GE rows get a
	// surplus and an artificial, EQ rows get an artificial.
	type rowPlan struct {
		coeffs []*big.Rat
		rhs    *big.Rat
		rel    Rel
		flip   bool
	}
	plans := make([]rowPlan, m)
	nSlack, nArt := 0, 0
	for i, c := range p.Constraints {
		coeffs := make([]*big.Rat, n)
		for j := 0; j < n; j++ {
			coeffs[j] = rational.Copy(coeff(c.Coeffs, j))
		}
		rhs := rational.Copy(c.RHS)
		rel := c.Rel
		flip := false
		if rhs.Sign() < 0 {
			flip = true
			for j := range coeffs {
				coeffs[j].Neg(coeffs[j])
			}
			rhs.Neg(rhs)
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		plans[i] = rowPlan{coeffs, rhs, rel, flip}
		switch rel {
		case LE, GE:
			nSlack++
			if rel == GE {
				nArt++
			}
		case EQ:
			nArt++
		}
	}

	nCols := n + nSlack + nArt
	t := &tableau{
		rows:     make([][]*big.Rat, m),
		basis:    make([]int, m),
		nCols:    nCols,
		nArt:     nArt,
		artLo:    n + nSlack,
		dualCols: make([]dualCol, m),
	}
	slackAt := n
	artAt := t.artLo
	for i, pl := range plans {
		row := make([]*big.Rat, nCols+1)
		for j := range row {
			row[j] = new(big.Rat)
		}
		for j := 0; j < n; j++ {
			row[j].Set(pl.coeffs[j])
		}
		row[nCols].Set(pl.rhs)
		switch pl.rel {
		case LE:
			row[slackAt].SetInt64(1)
			t.basis[i] = slackAt
			t.dualCols[i] = dualCol{col: slackAt, flip: pl.flip}
			slackAt++
		case GE:
			row[slackAt].SetInt64(-1)
			slackAt++
			row[artAt].SetInt64(1)
			t.basis[i] = artAt
			t.dualCols[i] = dualCol{col: artAt, flip: pl.flip}
			artAt++
		case EQ:
			row[artAt].SetInt64(1)
			t.basis[i] = artAt
			t.dualCols[i] = dualCol{col: artAt, flip: pl.flip}
			artAt++
		}
		t.rows[i] = row
	}
	return t
}

func (t *tableau) rhs(i int) *big.Rat { return t.rows[i][t.nCols] }

// pivot makes column col basic in row r.
func (t *tableau) pivot(r, col int) {
	prow := t.rows[r]
	pv := rational.Copy(prow[col])
	for j := range prow {
		prow[j].Quo(prow[j], pv)
	}
	for i, row := range t.rows {
		if i == r || row[col].Sign() == 0 {
			continue
		}
		factor := rational.Copy(row[col])
		for j := range row {
			row[j].Sub(row[j], rational.Mul(factor, prow[j]))
		}
	}
	if t.z != nil && t.z[col].Sign() != 0 {
		factor := rational.Copy(t.z[col])
		for j := range t.z {
			t.z[j].Sub(t.z[j], rational.Mul(factor, prow[j]))
		}
	}
	t.basis[r] = col
}

// iterate runs simplex iterations on the current z row until optimality
// (returns true) or unboundedness (returns false). allowed reports
// whether a column may enter the basis.
func (t *tableau) iterate(allowed func(col int) bool) bool {
	for {
		// Bland: entering column = smallest index with negative reduced
		// cost.
		enter := -1
		for j := 0; j < t.nCols; j++ {
			if allowed(j) && t.z[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return true
		}
		// Bland: leaving row = min ratio, ties by smallest basic index.
		leave := -1
		var best *big.Rat
		for i, row := range t.rows {
			if row[enter].Sign() <= 0 {
				continue
			}
			ratio := rational.Div(t.rhs(i), row[enter])
			if leave < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && t.basis[i] < t.basis[leave]) {
				leave = i
				best = ratio
			}
		}
		if leave < 0 {
			return false
		}
		t.pivot(leave, enter)
	}
}

// phase1 finds a basic feasible solution by maximizing the negated sum of
// artificial variables. It returns false if the problem is infeasible.
func (t *tableau) phase1() bool {
	if t.nArt == 0 {
		return true
	}
	// Objective: maximize -Σ artificials. Reduced costs start as +1 on
	// artificial columns, then basic artificial rows are eliminated.
	t.z = make([]*big.Rat, t.nCols+1)
	for j := range t.z {
		t.z[j] = new(big.Rat)
	}
	for j := t.artLo; j < t.artLo+t.nArt; j++ {
		t.z[j].SetInt64(1)
	}
	for i, bv := range t.basis {
		if bv >= t.artLo {
			for j := range t.z {
				t.z[j].Sub(t.z[j], t.rows[i][j])
			}
		}
	}
	if !t.iterate(func(int) bool { return true }) {
		// Phase 1 objective is bounded above by 0; unbounded is
		// impossible, but treat it as infeasible defensively.
		return false
	}
	// Optimal phase-1 value is -Σ artificials = z RHS; feasible iff 0.
	return t.z[t.nCols].Sign() == 0
}

// dropArtificials pivots remaining artificial variables out of the basis
// (possible only when their row has a nonzero structural entry) and
// removes redundant all-zero rows.
func (t *tableau) dropArtificials() {
	if t.nArt == 0 {
		return
	}
	var keptRows [][]*big.Rat
	var keptBasis []int
	for i := 0; i < len(t.rows); i++ {
		if t.basis[i] < t.artLo {
			keptRows = append(keptRows, t.rows[i])
			keptBasis = append(keptBasis, t.basis[i])
			continue
		}
		// Basic artificial at value 0 (phase 1 succeeded). Pivot in any
		// non-artificial column with nonzero coefficient.
		pivoted := false
		for j := 0; j < t.artLo; j++ {
			if t.rows[i][j].Sign() != 0 {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if pivoted {
			keptRows = append(keptRows, t.rows[i])
			keptBasis = append(keptBasis, t.basis[i])
		}
		// Otherwise the row is structurally redundant: drop it.
	}
	t.rows = keptRows
	t.basis = keptBasis
	// Forbid artificial columns forever by zeroing them; iterate()'s
	// allowed callback also excludes them.
	t.z = nil
}

// phase2 maximizes the real objective from the current basic feasible
// solution. It returns false on unboundedness.
func (t *tableau) phase2(p Problem) bool {
	// Reduced costs: z_j = Σ_i c_basis(i)·row_i[j] − c_j.
	t.z = make([]*big.Rat, t.nCols+1)
	for j := range t.z {
		t.z[j] = new(big.Rat)
	}
	for j := 0; j < p.NumVars; j++ {
		t.z[j].Neg(coeff(p.Objective, j))
	}
	for i, bv := range t.basis {
		c := new(big.Rat)
		if bv < p.NumVars {
			c.Set(coeff(p.Objective, bv))
		}
		if c.Sign() == 0 {
			continue
		}
		for j := range t.z {
			t.z[j].Add(t.z[j], rational.Mul(c, t.rows[i][j]))
		}
	}
	return t.iterate(func(col int) bool { return col < t.artLo })
}
