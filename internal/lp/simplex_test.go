package lp

import (
	"math/big"
	"testing"

	"closnet/internal/rational"
)

func rat(p, q int64) *big.Rat { return rational.R(p, q) }

func solveOK(t *testing.T, p Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestSolveBasicLE(t *testing.T) {
	// max x+y s.t. x+2y ≤ 4, 3x+y ≤ 6 → x=8/5, y=6/5, obj=14/5.
	p := Problem{
		NumVars:   2,
		Objective: []*big.Rat{rat(1, 1), rat(1, 1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(1, 1), rat(2, 1)}, Rel: LE, RHS: rat(4, 1)},
			{Coeffs: []*big.Rat{rat(3, 1), rat(1, 1)}, Rel: LE, RHS: rat(6, 1)},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(rat(14, 5)) != 0 {
		t.Errorf("objective = %s, want 14/5", rational.String(sol.Objective))
	}
	if sol.X[0].Cmp(rat(8, 5)) != 0 || sol.X[1].Cmp(rat(6, 5)) != 0 {
		t.Errorf("x = %s, %s", rational.String(sol.X[0]), rational.String(sol.X[1]))
	}
}

func TestSolveWithGEAndEQ(t *testing.T) {
	// max x+y s.t. x+y ≤ 10, x ≥ 3, y = 2 → x=8, y=2, obj=10.
	p := Problem{
		NumVars:   2,
		Objective: []*big.Rat{rat(1, 1), rat(1, 1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(1, 1), rat(1, 1)}, Rel: LE, RHS: rat(10, 1)},
			{Coeffs: []*big.Rat{rat(1, 1)}, Rel: GE, RHS: rat(3, 1)},
			{Coeffs: []*big.Rat{rat(0, 1), rat(1, 1)}, Rel: EQ, RHS: rat(2, 1)},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(rat(10, 1)) != 0 {
		t.Errorf("objective = %s, want 10", rational.String(sol.Objective))
	}
	if sol.X[1].Cmp(rat(2, 1)) != 0 {
		t.Errorf("y = %s, want 2", rational.String(sol.X[1]))
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// max -x s.t. -x ≤ -2 (i.e. x ≥ 2) → x=2, obj=-2.
	p := Problem{
		NumVars:   1,
		Objective: []*big.Rat{rat(-1, 1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(-1, 1)}, Rel: LE, RHS: rat(-2, 1)},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(rat(-2, 1)) != 0 {
		t.Errorf("objective = %s, want -2", rational.String(sol.Objective))
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2.
	p := Problem{
		NumVars:   1,
		Objective: []*big.Rat{rat(1, 1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(1, 1)}, Rel: LE, RHS: rat(1, 1)},
			{Coeffs: []*big.Rat{rat(1, 1)}, Rel: GE, RHS: rat(2, 1)},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// max x with no constraints.
	p := Problem{NumVars: 1, Objective: []*big.Rat{rat(1, 1)}}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
	// Unbounded only in an irrelevant direction: max -x, x free upward.
	p2 := Problem{NumVars: 1, Objective: []*big.Rat{rat(-1, 1)}}
	sol2, err := Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Optimal || sol2.Objective.Sign() != 0 {
		t.Errorf("status = %v obj = %v, want optimal 0", sol2.Status, sol2.Objective)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex; Bland's rule must not cycle.
	// max 3/4 x1 - 150 x2 + 1/50 x3 - 6 x4 (Beale's cycling example).
	p := Problem{
		NumVars: 4,
		Objective: []*big.Rat{
			rat(3, 4), rat(-150, 1), rat(1, 50), rat(-6, 1),
		},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(1, 4), rat(-60, 1), rat(-1, 25), rat(9, 1)}, Rel: LE, RHS: rat(0, 1)},
			{Coeffs: []*big.Rat{rat(1, 2), rat(-90, 1), rat(-1, 50), rat(3, 1)}, Rel: LE, RHS: rat(0, 1)},
			{Coeffs: []*big.Rat{rat(0, 1), rat(0, 1), rat(1, 1), rat(0, 1)}, Rel: LE, RHS: rat(1, 1)},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(rat(1, 20)) != 0 {
		t.Errorf("objective = %s, want 1/20", rational.String(sol.Objective))
	}
}

func TestSolveRedundantEquality(t *testing.T) {
	// Two identical equalities: one artificial stays basic at 0 and its
	// row must be dropped or pivoted out.
	p := Problem{
		NumVars:   2,
		Objective: []*big.Rat{rat(1, 1), rat(0, 1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(1, 1), rat(1, 1)}, Rel: EQ, RHS: rat(3, 1)},
			{Coeffs: []*big.Rat{rat(1, 1), rat(1, 1)}, Rel: EQ, RHS: rat(3, 1)},
			{Coeffs: []*big.Rat{rat(1, 1)}, Rel: LE, RHS: rat(2, 1)},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(rat(2, 1)) != 0 {
		t.Errorf("objective = %s, want 2", rational.String(sol.Objective))
	}
}

func TestSolveZeroVariables(t *testing.T) {
	sol := solveOK(t, Problem{NumVars: 0})
	if sol.Objective.Sign() != 0 || len(sol.X) != 0 {
		t.Errorf("unexpected solution %+v", sol)
	}
}

func TestSolveBadProblem(t *testing.T) {
	if _, err := Solve(Problem{NumVars: 1, Objective: []*big.Rat{rat(1, 1), rat(1, 1)}}); err == nil {
		t.Error("oversized objective accepted")
	}
	if _, err := Solve(Problem{NumVars: 1, Constraints: []Constraint{{Rel: Rel(9), RHS: rat(1, 1)}}}); err == nil {
		t.Error("bad relation accepted")
	}
	if _, err := Solve(Problem{NumVars: 1, Constraints: []Constraint{{Rel: LE}}}); err == nil {
		t.Error("nil RHS accepted")
	}
	if _, err := Solve(Problem{NumVars: 1, Constraints: []Constraint{{Coeffs: []*big.Rat{rat(1, 1), rat(1, 1)}, Rel: LE, RHS: rat(1, 1)}}}); err == nil {
		t.Error("oversized constraint accepted")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status names wrong")
	}
	if Status(99).String() == "" {
		t.Error("unknown status unformatted")
	}
}

// TestSolveSparseCoefficients checks that nil and missing trailing
// coefficients are treated as zero.
func TestSolveSparseCoefficients(t *testing.T) {
	p := Problem{
		NumVars:   3,
		Objective: []*big.Rat{nil, rat(1, 1)}, // maximize y
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{nil, rat(1, 1)}, Rel: LE, RHS: rat(5, 1)},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(rat(5, 1)) != 0 {
		t.Errorf("objective = %s, want 5", rational.String(sol.Objective))
	}
}
