package lp

import (
	"math/big"
	"math/rand"
	"testing"

	"closnet/internal/rational"
)

// checkStrongDuality verifies Σ y_i·b_i == optimum, the sign conditions
// on the multipliers, and dual feasibility Σ_i y_i·A_ij ≥ c_j for every
// variable — which together certify optimality independently of the
// simplex run.
func checkStrongDuality(t *testing.T, p Problem, sol *Solution) {
	t.Helper()
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if len(sol.Duals) != len(p.Constraints) {
		t.Fatalf("%d duals for %d constraints", len(sol.Duals), len(p.Constraints))
	}
	yb := new(big.Rat)
	for i, c := range p.Constraints {
		yb.Add(yb, rational.Mul(sol.Duals[i], c.RHS))
		switch c.Rel {
		case LE:
			if sol.Duals[i].Sign() < 0 {
				t.Errorf("constraint %d (LE): negative dual %s", i, rational.String(sol.Duals[i]))
			}
		case GE:
			if sol.Duals[i].Sign() > 0 {
				t.Errorf("constraint %d (GE): positive dual %s", i, rational.String(sol.Duals[i]))
			}
		}
	}
	if yb.Cmp(sol.Objective) != 0 {
		t.Errorf("strong duality violated: y·b = %s, optimum = %s",
			rational.String(yb), rational.String(sol.Objective))
	}
	for j := 0; j < p.NumVars; j++ {
		lhs := new(big.Rat)
		for i, c := range p.Constraints {
			lhs.Add(lhs, rational.Mul(sol.Duals[i], coeff(c.Coeffs, j)))
		}
		if lhs.Cmp(coeff(p.Objective, j)) < 0 {
			t.Errorf("dual infeasible at variable %d: %s < %s",
				j, rational.String(lhs), rational.String(coeff(p.Objective, j)))
		}
	}
}

func TestDualsBasicLE(t *testing.T) {
	p := Problem{
		NumVars:   2,
		Objective: []*big.Rat{rat(1, 1), rat(1, 1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(1, 1), rat(2, 1)}, Rel: LE, RHS: rat(4, 1)},
			{Coeffs: []*big.Rat{rat(3, 1), rat(1, 1)}, Rel: LE, RHS: rat(6, 1)},
		},
	}
	sol := solveOK(t, p)
	checkStrongDuality(t, p, sol)
	// Known duals: y = (2/5, 1/5).
	if sol.Duals[0].Cmp(rat(2, 5)) != 0 || sol.Duals[1].Cmp(rat(1, 5)) != 0 {
		t.Errorf("duals = %s, %s; want 2/5, 1/5",
			rational.String(sol.Duals[0]), rational.String(sol.Duals[1]))
	}
}

func TestDualsMixedRelations(t *testing.T) {
	p := Problem{
		NumVars:   2,
		Objective: []*big.Rat{rat(1, 1), rat(1, 1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(1, 1), rat(1, 1)}, Rel: LE, RHS: rat(10, 1)},
			{Coeffs: []*big.Rat{rat(1, 1)}, Rel: GE, RHS: rat(3, 1)},
			{Coeffs: []*big.Rat{rat(0, 1), rat(1, 1)}, Rel: EQ, RHS: rat(2, 1)},
		},
	}
	sol := solveOK(t, p)
	checkStrongDuality(t, p, sol)
}

func TestDualsNegativeRHSFlip(t *testing.T) {
	// -x ≤ -2 is x ≥ 2 internally; the reported dual must be oriented
	// for the original LE row (non-negative).
	p := Problem{
		NumVars:   1,
		Objective: []*big.Rat{rat(-1, 1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(-1, 1)}, Rel: LE, RHS: rat(-2, 1)},
		},
	}
	sol := solveOK(t, p)
	checkStrongDuality(t, p, sol)
}

func TestDualsBealeDegenerate(t *testing.T) {
	p := Problem{
		NumVars: 4,
		Objective: []*big.Rat{
			rat(3, 4), rat(-150, 1), rat(1, 50), rat(-6, 1),
		},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(1, 4), rat(-60, 1), rat(-1, 25), rat(9, 1)}, Rel: LE, RHS: rat(0, 1)},
			{Coeffs: []*big.Rat{rat(1, 2), rat(-90, 1), rat(-1, 50), rat(3, 1)}, Rel: LE, RHS: rat(0, 1)},
			{Coeffs: []*big.Rat{rat(0, 1), rat(0, 1), rat(1, 1), rat(0, 1)}, Rel: LE, RHS: rat(1, 1)},
		},
	}
	sol := solveOK(t, p)
	checkStrongDuality(t, p, sol)
}

// TestDualsRandomLEInstances fuzz-checks strong duality on random
// bounded LE-form problems (bounded by a box row so optima exist).
func TestDualsRandomLEInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(4) + 1
		m := rng.Intn(4) + 1
		p := Problem{NumVars: n}
		for j := 0; j < n; j++ {
			p.Objective = append(p.Objective, rat(int64(rng.Intn(7)-3), 1))
		}
		for i := 0; i < m; i++ {
			var cs []*big.Rat
			for j := 0; j < n; j++ {
				cs = append(cs, rat(int64(rng.Intn(5)), 1))
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: cs, Rel: LE, RHS: rat(int64(rng.Intn(9)+1), 1),
			})
		}
		// Bounding box keeps the problem bounded.
		for j := 0; j < n; j++ {
			cs := make([]*big.Rat, n)
			cs[j] = rat(1, 1)
			p.Constraints = append(p.Constraints, Constraint{Coeffs: cs, Rel: LE, RHS: rat(10, 1)})
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		checkStrongDuality(t, p, sol)
	}
}

// TestDualsComplementarySlackness: on the basic LE instance, slack
// constraints get zero duals and positive-dual constraints are tight.
func TestDualsComplementarySlackness(t *testing.T) {
	p := Problem{
		NumVars:   2,
		Objective: []*big.Rat{rat(1, 1), rat(0, 1)}, // only x matters
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(1, 1), rat(0, 1)}, Rel: LE, RHS: rat(2, 1)}, // tight
			{Coeffs: []*big.Rat{rat(0, 1), rat(1, 1)}, Rel: LE, RHS: rat(5, 1)}, // slack
		},
	}
	sol := solveOK(t, p)
	checkStrongDuality(t, p, sol)
	if sol.Duals[0].Cmp(rat(1, 1)) != 0 {
		t.Errorf("tight constraint dual = %s, want 1", rational.String(sol.Duals[0]))
	}
	if sol.Duals[1].Sign() != 0 {
		t.Errorf("slack constraint dual = %s, want 0", rational.String(sol.Duals[1]))
	}
}

// TestDualsSplittableThroughputModel: the LP models produce valid dual
// certificates too — spot-checked on the Example 3.3 throughput LP,
// whose dual is a fractional vertex cover of weight 2.
func TestDualsSplittableThroughputModel(t *testing.T) {
	// Reconstruct the throughput LP directly: 3 flows, capacities from
	// MS_1 server links.
	// Variables: x0 (s1->t1), x1 (s2->t2), x2 (s2->t1).
	p := Problem{
		NumVars:   3,
		Objective: []*big.Rat{rat(1, 1), rat(1, 1), rat(1, 1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{rat(1, 1), nil, nil}, Rel: LE, RHS: rat(1, 1)},       // s1
			{Coeffs: []*big.Rat{nil, rat(1, 1), rat(1, 1)}, Rel: LE, RHS: rat(1, 1)}, // s2
			{Coeffs: []*big.Rat{rat(1, 1), nil, rat(1, 1)}, Rel: LE, RHS: rat(1, 1)}, // t1
			{Coeffs: []*big.Rat{nil, rat(1, 1), nil}, Rel: LE, RHS: rat(1, 1)},       // t2
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("optimum = %s, want 2", rational.String(sol.Objective))
	}
	checkStrongDuality(t, p, sol)
}
