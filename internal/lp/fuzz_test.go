package lp

import (
	"math/big"
	"testing"

	"closnet/internal/rational"
)

// FuzzSimplex decodes arbitrary bytes as small LE-form problems with a
// bounding box and checks that the solver terminates with an optimal,
// primal-feasible solution whose dual certificate satisfies strong
// duality.
func FuzzSimplex(f *testing.F) {
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{3, 0, 2, 5, 1, 4, 0, 0, 9})
	f.Add([]byte{255, 254, 253, 252, 251, 250})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := int(data[0]%3) + 1
		m := int(data[1]%3) + 1
		at := 2
		next := func() int64 {
			if at >= len(data) {
				return 1
			}
			v := int64(data[at] % 11)
			at++
			return v
		}
		p := Problem{NumVars: n}
		for j := 0; j < n; j++ {
			p.Objective = append(p.Objective, rational.Int(next()-3))
		}
		for i := 0; i < m; i++ {
			cs := make([]*big.Rat, n)
			for j := 0; j < n; j++ {
				cs[j] = rational.Int(next())
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: cs, Rel: LE, RHS: rational.Int(next() + 1),
			})
		}
		for j := 0; j < n; j++ {
			cs := make([]*big.Rat, n)
			cs[j] = rational.One()
			p.Constraints = append(p.Constraints, Constraint{Coeffs: cs, Rel: LE, RHS: rational.Int(20)})
		}

		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if sol.Status != Optimal {
			t.Fatalf("status %v on a bounded feasible problem", sol.Status)
		}
		// Primal feasibility.
		for i, c := range p.Constraints {
			lhs := new(big.Rat)
			for j := 0; j < n; j++ {
				lhs.Add(lhs, rational.Mul(coeff(c.Coeffs, j), sol.X[j]))
			}
			if lhs.Cmp(c.RHS) > 0 {
				t.Fatalf("constraint %d violated: %s > %s", i, rational.String(lhs), rational.String(c.RHS))
			}
		}
		// Strong duality.
		yb := new(big.Rat)
		for i, c := range p.Constraints {
			yb.Add(yb, rational.Mul(sol.Duals[i], c.RHS))
		}
		if yb.Cmp(sol.Objective) != 0 {
			t.Fatalf("strong duality violated: %s != %s", rational.String(yb), rational.String(sol.Objective))
		}
	})
}
