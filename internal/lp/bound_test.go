package lp

import (
	"math/big"
	"testing"

	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/topology"
)

func TestPrefixPathsShape(t *testing.T) {
	// C_3 so free flows get 3 candidate paths.
	c := topology.MustClos(3)
	fs := core.NewCollection(
		c.Source(1, 1), c.Dest(1, 1),
		c.Source(1, 2), c.Dest(2, 1),
		c.Source(2, 1), c.Dest(1, 2),
	)
	ma := core.MiddleAssignment{2, 3, 1}
	ps, err := PrefixPaths(c, fs, ma, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(fs) {
		t.Fatalf("%d path sets for %d flows", len(ps), len(fs))
	}
	if len(ps[0]) != 3 {
		t.Errorf("free flow has %d candidate paths, want 3", len(ps[0]))
	}
	for fi := 1; fi < len(fs); fi++ {
		if len(ps[fi]) != 1 {
			t.Errorf("fixed flow %d has %d paths, want 1", fi, len(ps[fi]))
		}
		// The single path must route through the assigned middle.
		want, err := c.Path(fs[fi].Src, fs[fi].Dst, ma[fi])
		if err != nil {
			t.Fatal(err)
		}
		for j, l := range want {
			if ps[fi][0][j] != l {
				t.Errorf("fixed flow %d path differs from middle %d's", fi, ma[fi])
				break
			}
		}
	}
	if _, err := PrefixPaths(c, fs, core.MiddleAssignment{1}, 0); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := PrefixPaths(c, fs, ma, len(fs)+1); err == nil {
		t.Error("out-of-range fixedFrom accepted")
	}
}

// TestCertifyDualAcceptsSimplexOptimum: by strong duality the simplex
// optimum's dual solution must pass certification with value exactly
// equal to the primal optimum — certifying costs no pruning power.
func TestCertifyDualAcceptsSimplexOptimum(t *testing.T) {
	c := topology.MustClos(2)
	fs := example23Clos(c)
	paths, err := ClosAllPaths(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ThroughputProblem(c.Network(), fs, paths)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want Optimal", sol.Status)
	}
	bound, err := CertifyDual(p, sol.Duals)
	if err != nil {
		t.Fatalf("simplex duals rejected: %v", err)
	}
	if bound.Cmp(sol.Objective) != 0 {
		t.Errorf("certified bound %s != primal optimum %s",
			rational.String(bound), rational.String(sol.Objective))
	}
}

// TestCertifyDualRejectsTampered: breaking a sign condition or lowering
// a dual below feasibility must fail certification — the checks are what
// make the pruning bound independent of solver correctness.
func TestCertifyDualRejectsTampered(t *testing.T) {
	c := topology.MustClos(2)
	fs := example23Clos(c)
	paths, err := ClosAllPaths(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ThroughputProblem(c.Network(), fs, paths)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(mutate func(ys []*big.Rat)) error {
		ys := make([]*big.Rat, len(sol.Duals))
		for i, y := range sol.Duals {
			ys[i] = new(big.Rat).Set(y)
		}
		mutate(ys)
		_, err := CertifyDual(p, ys)
		return err
	}
	// Zeroing every dual violates the dual constraints (0 < c_j = 1).
	if err := tamper(func(ys []*big.Rat) {
		for _, y := range ys {
			y.SetInt64(0)
		}
	}); err == nil {
		t.Error("all-zero duals certified")
	}
	// A negative multiplier on a ≤ row breaks the sign condition.
	if err := tamper(func(ys []*big.Rat) { ys[0].SetInt64(-1) }); err == nil {
		t.Error("negative dual on a ≤ row certified")
	}
	if _, err := CertifyDual(p, sol.Duals[:1]); err == nil {
		t.Error("truncated dual vector certified")
	}
	if err := tamper(func(ys []*big.Rat) { ys[0] = nil }); err == nil {
		t.Error("nil dual certified")
	}
}

// TestSplittableThroughputBoundMatchesLP: the certified bound equals the
// splittable maximum throughput, at the root (all flows free) and at a
// fixed suffix.
func TestSplittableThroughputBoundMatchesLP(t *testing.T) {
	c := topology.MustClos(2)
	fs := example23Clos(c)
	ma := core.MiddleAssignment{1, 2, 1, 2, 1, 1}
	for _, fixedFrom := range []int{len(fs), 3, 0} {
		paths, err := PrefixPaths(c, fs, ma, fixedFrom)
		if err != nil {
			t.Fatal(err)
		}
		opt, _, err := SplittableMaxThroughput(c.Network(), fs, paths)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := SplittableThroughputBound(c.Network(), fs, paths)
		if err != nil {
			t.Fatal(err)
		}
		if bound.Cmp(opt) != 0 {
			t.Errorf("fixedFrom=%d: certified bound %s != LP optimum %s",
				fixedFrom, rational.String(bound), rational.String(opt))
		}
	}
}
