// Package maxflow implements Dinic's maximum-flow algorithm on integer
// capacities, with a minimum-cut extractor.
//
// The library uses it to verify the full-bisection-bandwidth property of
// Clos networks (§1: the minimum capacity of a global cut inside the
// network is at least that of a cut outside it) and to check integral
// routability of unit-demand flow subsets, the splittable counterpart of
// the matching-based arguments in §3 and §5.
package maxflow

import (
	"fmt"
	"math"
)

// Graph is a flow network under construction. Nodes are dense 0-based
// indices. Use AddEdge to add directed capacitated edges; reverse edges
// with zero capacity are added automatically.
type Graph struct {
	numNodes int
	heads    [][]int // node -> indices into edges
	edges    []edge
}

type edge struct {
	to  int
	cap int64
}

// NewGraph returns an empty flow network with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{
		numNodes: n,
		heads:    make([][]int, n),
	}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.numNodes }

// AddEdge adds a directed edge u→v with the given capacity and returns
// its index (usable with Flow after a Max run). It returns an error on
// out-of-range endpoints or negative capacity.
func (g *Graph) AddEdge(u, v int, capacity int64) (int, error) {
	if u < 0 || u >= g.numNodes || v < 0 || v >= g.numNodes {
		return 0, fmt.Errorf("maxflow: edge %d->%d out of range [0,%d)", u, v, g.numNodes)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("maxflow: negative capacity %d", capacity)
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: v, cap: capacity})
	g.edges = append(g.edges, edge{to: u, cap: 0})
	g.heads[u] = append(g.heads[u], id)
	g.heads[v] = append(g.heads[v], id+1)
	return id, nil
}

// Result holds the outcome of a max-flow computation.
type Result struct {
	Value int64
	// residual[i] is the residual capacity of internal edge i.
	residual []int64
	original []edge
	graph    *Graph
}

// Flow returns the flow pushed through the edge returned by AddEdge.
func (r *Result) Flow(edgeID int) int64 {
	return r.original[edgeID].cap - r.residual[edgeID]
}

// Max computes the maximum s→t flow using Dinic's algorithm. The graph is
// not modified; repeated calls are independent.
func (g *Graph) Max(s, t int) (*Result, error) {
	if s < 0 || s >= g.numNodes || t < 0 || t >= g.numNodes {
		return nil, fmt.Errorf("maxflow: terminal out of range")
	}
	if s == t {
		return nil, fmt.Errorf("maxflow: source equals sink")
	}

	res := make([]int64, len(g.edges))
	for i, e := range g.edges {
		res[i] = e.cap
	}
	level := make([]int, g.numNodes)
	iter := make([]int, g.numNodes)
	queue := make([]int, 0, g.numNodes)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, ei := range g.heads[u] {
				v := g.edges[ei].to
				if res[ei] > 0 && level[v] < 0 {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int, f int64) int64
	dfs = func(u int, f int64) int64 {
		if u == t {
			return f
		}
		for ; iter[u] < len(g.heads[u]); iter[u]++ {
			ei := g.heads[u][iter[u]]
			v := g.edges[ei].to
			if res[ei] <= 0 || level[v] != level[u]+1 {
				continue
			}
			pushed := dfs(v, minInt64(f, res[ei]))
			if pushed > 0 {
				res[ei] -= pushed
				res[ei^1] += pushed
				return pushed
			}
		}
		return 0
	}

	var total int64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, math.MaxInt64)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return &Result{Value: total, residual: res, original: g.edges, graph: g}, nil
}

// MinCut returns the source side of a minimum s-t cut after a Max run:
// the set of nodes reachable from s in the residual graph, as a boolean
// slice indexed by node.
func (r *Result) MinCut(s int) []bool {
	g := r.graph
	side := make([]bool, g.numNodes)
	side[s] = true
	queue := []int{s}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, ei := range g.heads[u] {
			v := g.edges[ei].to
			if r.residual[ei] > 0 && !side[v] {
				side[v] = true
				queue = append(queue, v)
			}
		}
	}
	return side
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
