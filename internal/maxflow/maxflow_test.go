package maxflow

import (
	"math/rand"
	"testing"
)

func mustEdge(t *testing.T, g *Graph, u, v int, c int64) int {
	t.Helper()
	id, err := g.AddEdge(u, v, c)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d,%d): %v", u, v, c, err)
	}
	return id
}

func TestMaxFlowSimple(t *testing.T) {
	// s -> a -> t with a bottleneck of 3.
	g := NewGraph(3)
	mustEdge(t, g, 0, 1, 5)
	mustEdge(t, g, 1, 2, 3)
	r, err := g.Max(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 3 {
		t.Errorf("flow = %d, want 3", r.Value)
	}
}

func TestMaxFlowDiamond(t *testing.T) {
	// Classic diamond with a cross edge.
	g := NewGraph(4)
	mustEdge(t, g, 0, 1, 10)
	mustEdge(t, g, 0, 2, 10)
	e12 := mustEdge(t, g, 1, 2, 1)
	mustEdge(t, g, 1, 3, 10)
	mustEdge(t, g, 2, 3, 10)
	r, err := g.Max(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 20 {
		t.Errorf("flow = %d, want 20", r.Value)
	}
	if f := r.Flow(e12); f != 0 {
		t.Errorf("cross edge carries %d, want 0", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph(2)
	r, err := g.Max(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0 {
		t.Errorf("flow = %d, want 0", r.Value)
	}
}

func TestMaxFlowErrors(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := g.AddEdge(0, 1, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := g.Max(0, 0); err == nil {
		t.Error("s == t accepted")
	}
	if _, err := g.Max(0, 9); err == nil {
		t.Error("out-of-range terminal accepted")
	}
}

func TestFlowConservationAndCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(8) + 2
		g := NewGraph(n)
		type rec struct {
			id   int
			u, v int
			c    int64
		}
		var recs []rec
		for e := 0; e < rng.Intn(20); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(10))
			recs = append(recs, rec{mustEdge(t, g, u, v, c), u, v, c})
		}
		r, err := g.Max(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		// Capacity constraints and conservation.
		net := make([]int64, n)
		for _, rc := range recs {
			f := r.Flow(rc.id)
			if f < 0 || f > rc.c {
				t.Fatalf("trial %d: edge flow %d outside [0,%d]", trial, f, rc.c)
			}
			net[rc.u] -= f
			net[rc.v] += f
		}
		if net[0] != -r.Value || net[n-1] != r.Value {
			t.Fatalf("trial %d: terminal imbalance", trial)
		}
		for u := 1; u < n-1; u++ {
			if net[u] != 0 {
				t.Fatalf("trial %d: node %d violates conservation by %d", trial, u, net[u])
			}
		}
	}
}

// TestMaxFlowMinCut checks the max-flow min-cut theorem on random graphs:
// the capacity of the extracted cut equals the flow value.
func TestMaxFlowMinCut(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(8) + 2
		g := NewGraph(n)
		type rec struct {
			id   int
			u, v int
			c    int64
		}
		var recs []rec
		for e := 0; e < rng.Intn(24); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(8))
			recs = append(recs, rec{mustEdge(t, g, u, v, c), u, v, c})
		}
		r, err := g.Max(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		side := r.MinCut(0)
		if !side[0] || side[n-1] {
			t.Fatalf("trial %d: cut does not separate terminals", trial)
		}
		var cutCap int64
		for _, rc := range recs {
			if side[rc.u] && !side[rc.v] {
				cutCap += rc.c
			}
		}
		if cutCap != r.Value {
			t.Fatalf("trial %d: cut capacity %d != flow %d", trial, cutCap, r.Value)
		}
	}
}

// TestClosBisection verifies the full-bisection-bandwidth shape on a
// hand-built C_n fabric graph: the max flow from all inputs to all
// outputs through the middle stage equals the total server-facing
// capacity (2n² for n² server links of unit capacity per side... here we
// check fabric capacity 2n² ≥ server capacity 2n² exactly).
func TestClosBisection(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		// Nodes: super-source, 2n inputs, n middles, 2n outputs, super-sink.
		num := 1 + 2*n + n + 2*n + 1
		s, tk := 0, num-1
		input := func(i int) int { return 1 + i }
		middle := func(m int) int { return 1 + 2*n + m }
		output := func(o int) int { return 1 + 2*n + n + o }
		g := NewGraph(num)
		for i := 0; i < 2*n; i++ {
			// Each ToR has n unit server links.
			mustEdge(t, g, s, input(i), int64(n))
			mustEdge(t, g, output(i), tk, int64(n))
			for m := 0; m < n; m++ {
				mustEdge(t, g, input(i), middle(m), 1)
				mustEdge(t, g, middle(m), output(i), 1)
			}
		}
		r, err := g.Max(s, tk)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(2 * n * n); r.Value != want {
			t.Errorf("C_%d fabric max flow = %d, want %d", n, r.Value, want)
		}
	}
}
