package obs

import (
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusRoundTrip: the exposition of a live registry
// passes the linter, covers every registered metric, and carries the
// cumulative histogram series of both timers and plain histograms.
func TestWritePrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.requests").Add(12)
	reg.Counter("server.cache.hits").Add(7)
	reg.Gauge("search.space_total").Set(855)
	lat := reg.Timer("server.latency")
	for i := 1; i <= 500; i++ {
		lat.Observe(time.Duration(i) * time.Microsecond)
	}
	reg.Histogram("loadgen.latency").Observe(3 * time.Millisecond)
	reg.Timer("engine.compute_latency") // registered, never observed

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE closnet_server_requests_total counter",
		"closnet_server_requests_total 12",
		"closnet_server_cache_hits_total 7",
		"# TYPE closnet_search_space_total gauge",
		"closnet_search_space_total 855",
		"# TYPE closnet_server_latency_seconds histogram",
		"closnet_server_latency_seconds_bucket{le=\"+Inf\"} 500",
		"closnet_server_latency_seconds_count 500",
		"closnet_server_latency_seconds_sum",
		"closnet_loadgen_latency_seconds_count 1",
		// Unobserved timers still expose an empty, lintable family.
		"closnet_engine_compute_latency_seconds_bucket{le=\"+Inf\"} 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition fails lint: %v\n%s", err, out)
	}
}

// TestWritePrometheusNil: a nil registry writes nothing.
func TestWritePrometheusNil(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil registry wrote %q", sb.String())
	}
}

// TestLintExposition rejects the violations the CI smoke exists to
// catch: undeclared samples, non-monotone bucket bounds or counts,
// missing +Inf/_sum/_count, and disagreeing counts.
func TestLintExposition(t *testing.T) {
	ok := `# TYPE closnet_x_seconds histogram
closnet_x_seconds_bucket{le="0.001"} 3
closnet_x_seconds_bucket{le="0.002"} 5
closnet_x_seconds_bucket{le="+Inf"} 5
closnet_x_seconds_sum 0.004
closnet_x_seconds_count 5
`
	if err := LintExposition(strings.NewReader(ok)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	for name, bad := range map[string]string{
		"empty":      "",
		"undeclared": "closnet_y_total 3\n",
		"le order": `# TYPE closnet_x_seconds histogram
closnet_x_seconds_bucket{le="0.002"} 3
closnet_x_seconds_bucket{le="0.001"} 5
closnet_x_seconds_bucket{le="+Inf"} 5
closnet_x_seconds_sum 1
closnet_x_seconds_count 5
`,
		"count regress": `# TYPE closnet_x_seconds histogram
closnet_x_seconds_bucket{le="0.001"} 5
closnet_x_seconds_bucket{le="0.002"} 3
closnet_x_seconds_bucket{le="+Inf"} 5
closnet_x_seconds_sum 1
closnet_x_seconds_count 5
`,
		"no inf": `# TYPE closnet_x_seconds histogram
closnet_x_seconds_bucket{le="0.001"} 5
closnet_x_seconds_sum 1
closnet_x_seconds_count 5
`,
		"no sum": `# TYPE closnet_x_seconds histogram
closnet_x_seconds_bucket{le="+Inf"} 5
closnet_x_seconds_count 5
`,
		"count mismatch": `# TYPE closnet_x_seconds histogram
closnet_x_seconds_bucket{le="+Inf"} 5
closnet_x_seconds_sum 1
closnet_x_seconds_count 4
`,
		"garbage value": "# TYPE closnet_z gauge\nclosnet_z pancake\n",
	} {
		if err := LintExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("lint accepted the %q exposition", name)
		}
	}
}
