// Command promlint validates a Prometheus text exposition on stdin with
// obs.LintExposition — the CI metrics smoke's promtool stand-in:
//
//	curl -s localhost:8427/metrics | go run ./internal/obs/promlint
//
// Exit 0 when the exposition parses and every histogram family holds
// the format's invariants (ascending le bounds, cumulative counts,
// +Inf/_sum/_count agreement); exit 1 with the first violation
// otherwise.
package main

import (
	"fmt"
	"os"

	"closnet/internal/obs"
)

func main() {
	if err := obs.LintExposition(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	fmt.Println("promlint: ok")
}
