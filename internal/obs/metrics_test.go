package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from many goroutines —
// handle creation by name, counter/gauge/timer updates, and concurrent
// snapshots — so `go test -race` proves the registry race-free, and the
// final snapshot proves no update was lost.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Handles are fetched by name inside the goroutine, so handle
			// creation itself races against use and snapshotting.
			c := reg.Counter("shared.counter")
			ga := reg.Gauge("shared.gauge")
			tm := reg.Timer("shared.timer")
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Set(int64(i))
				tm.Observe(time.Duration(i + 1))
				if i%250 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["shared.counter"]; got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	ts := snap.Timers["shared.timer"]
	if ts.Count != goroutines*perG {
		t.Errorf("timer count = %d, want %d", ts.Count, goroutines*perG)
	}
	if ts.MinNs != 1 || ts.MaxNs != perG {
		t.Errorf("timer min/max = %d/%d, want 1/%d", ts.MinNs, ts.MaxNs, perG)
	}
	if ts.SumNs != int64(goroutines)*perG*(perG+1)/2 {
		t.Errorf("timer sum = %d, want %d", ts.SumNs, int64(goroutines)*perG*(perG+1)/2)
	}
}

// TestRegistrySharesHandlesByName: two lookups of the same name must
// return the same handle, so concurrent subsystems accumulate into one
// metric.
func TestRegistrySharesHandlesByName(t *testing.T) {
	reg := NewRegistry()
	a, b := reg.Counter("x"), reg.Counter("x")
	if a != b {
		t.Error("same-name counters are distinct handles")
	}
	a.Inc()
	b.Inc()
	if got := reg.Snapshot().Counters["x"]; got != 2 {
		t.Errorf("shared counter = %d, want 2", got)
	}
}

// TestNilRegistryDisabled: the "off" state. A nil registry hands out nil
// handles, every operation on them is a no-op, and a nil Obs bundle
// yields nil for both sinks.
func TestNilRegistryDisabled(t *testing.T) {
	var reg *Registry
	c, g, tm := reg.Counter("c"), reg.Gauge("g"), reg.Timer("t")
	if c != nil || g != nil || tm != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(7)
	g.Add(1)
	tm.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || tm.Stats() != (TimerStats{}) {
		t.Error("nil handles carry state")
	}
	if snap := reg.Snapshot(); snap.Counters != nil || snap.Gauges != nil || snap.Timers != nil {
		t.Error("nil registry snapshot not empty")
	}

	var o *Obs
	if o.Registry() != nil || o.Journal() != nil {
		t.Error("nil Obs bundle returned non-nil sinks")
	}
}

// TestDisabledNoAlloc pins the zero-overhead contract: metric updates
// through nil handles — what instrumented hot paths execute when
// observability is off — allocate nothing.
func TestDisabledNoAlloc(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		tm *Timer
		h  *Histogram
		sp *Span
		j  *Journal
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(-1)
		tm.Observe(time.Millisecond)
		h.Observe(time.Millisecond)
		_ = h.Quantile(0.5)
		sp.Child("x").Attr("k", 1).End()
		j.Emit("ev", nil)
		_ = c.Value()
		_ = g.Value()
	})
	if allocs != 0 {
		t.Errorf("disabled instrumentation allocates %.1f per run, want 0", allocs)
	}
}

// TestTimerEmpty: an unobserved timer reports all-zero stats (min is
// primed to MaxInt64 internally and must not leak out).
func TestTimerEmpty(t *testing.T) {
	reg := NewRegistry()
	if got := reg.Timer("t").Stats(); got != (TimerStats{}) {
		t.Errorf("empty timer stats = %+v, want zero", got)
	}
}

func TestWriteSummary(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("search.states").Add(5000)
	reg.Gauge("search.space_total").Set(5000)
	reg.Timer("search.duration").Observe(2 * time.Second)
	var sb strings.Builder
	WriteSummary(&sb, reg.Snapshot(), 3*time.Second)
	out := sb.String()
	for _, want := range []string{
		"counter search.states",
		"gauge   search.space_total",
		"timer   search.duration",
		"search.states_per_sec",
		"2.5k", // 5000 states / 2s
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestFmtRate(t *testing.T) {
	for _, tc := range []struct {
		rate float64
		want string
	}{
		{12, "12.0"},
		{4500, "4.5k"},
		{2_500_000, "2.5M"},
	} {
		if got := fmtRate(tc.rate); got != tc.want {
			t.Errorf("fmtRate(%v) = %q, want %q", tc.rate, got, tc.want)
		}
	}
}

func TestProgressLine(t *testing.T) {
	got := progressLine(500, 1000, time.Second)
	for _, want := range []string{"500/1000", "50.0%", "500.0 states/s", "eta 1s"} {
		if !strings.Contains(got, want) {
			t.Errorf("progress line missing %q: %s", want, got)
		}
	}
	// Without a known total the line degrades to count and rate.
	if got := progressLine(500, 0, time.Second); strings.Contains(got, "eta") {
		t.Errorf("totalless progress line has an eta: %s", got)
	}
}
