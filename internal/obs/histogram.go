package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numHistBuckets covers the full positive int64 nanosecond range at two
// sub-buckets per octave: values with floor(log2 v) = k land in bucket
// 2k or 2k+1 depending on whether they fall in the lower or upper half
// of the octave. k ≤ 62 for any int64 duration, so 126 buckets suffice;
// 128 keeps the array power-of-two sized.
const numHistBuckets = 128

// Histogram is a lock-free log-bucketed duration histogram: fixed
// nanosecond buckets at two sub-buckets per octave, atomically updated
// counts, an exact sum and an exact maximum. The zero value is ready to
// use and a nil *Histogram is a no-op, following the Counter/Gauge/
// Timer convention, so hot paths hold handles unconditionally and pay a
// single nil check with zero allocations when observability is off.
//
// Quantile estimates carry a documented error bound: the estimate for a
// true quantile value v satisfies v ≤ estimate < 1.5·v, because a
// bucket spanning [L, U] is reported by its inclusive upper bound U and
// U/L < 1.5 for every bucket (the estimate is additionally clamped to
// the exact observed maximum, which can only tighten it). The bound is
// asserted by a property test against sorted reference samples.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numHistBuckets]atomic.Int64
}

// bucketIndex maps a nanosecond value to its bucket. Non-positive
// values and 1 share bucket 0; for v ≥ 2 with k = floor(log2 v) the
// bucket is 2k when v < 1.5·2^k and 2k+1 otherwise (equivalently: on
// bit k-1 of v).
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	k := bits.Len64(uint64(v)) - 1 // k ≥ 1
	idx := 2 * k
	if v&(1<<(k-1)) != 0 {
		idx++
	}
	return idx
}

// bucketUpper returns the inclusive upper nanosecond bound of bucket
// idx: 3·2^(k-1) − 1 for bucket 2k (the lower half-octave), 2^(k+1) − 1
// for bucket 2k+1. Bucket 0 is the single value 1 (which also absorbs
// non-positive observations).
func bucketUpper(idx int) int64 {
	k := idx / 2
	if idx%2 == 0 {
		if k == 0 {
			return 1
		}
		return 3<<(k-1) - 1
	}
	if k >= 62 {
		return math.MaxInt64
	}
	return 1<<(k+1) - 1
}

// Observe records one duration. Lock-free, zero allocations, safe for
// concurrent use; a no-op on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.observe(d.Nanoseconds())
}

func (h *Histogram) observe(ns int64) {
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketIndex(ns)].Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshotBuckets copies the bucket counts and returns the copy's total
// and the index past the last non-empty bucket. Deriving the total from
// the copy (rather than h.count) keeps every invariant computed from
// one snapshot internally consistent under concurrent observation.
func (h *Histogram) snapshotBuckets() (counts [numHistBuckets]int64, total int64, end int) {
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
		if c > 0 {
			end = i + 1
		}
	}
	return counts, total, end
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) in nanoseconds: the
// inclusive upper bound of the bucket holding the ceil(q·count)-th
// smallest observation, clamped to the exact observed maximum. Returns
// 0 on a nil or empty histogram. The estimate e of a true value v
// satisfies v ≤ e < 1.5·v.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	counts, total, end := h.snapshotBuckets()
	return quantileOf(&counts, total, end, q, h.max.Load())
}

func quantileOf(counts *[numHistBuckets]int64, total int64, end int, q float64, max int64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < end; i++ {
		cum += counts[i]
		if cum >= rank {
			if u := bucketUpper(i); u < max {
				return u
			}
			return max
		}
	}
	return max
}

// HistogramStats is the JSON-serializable aggregate of a Histogram:
// exact count, sum and max plus the estimated p50/p90/p99 (see the
// Quantile error bound).
type HistogramStats struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	MaxNs int64 `json:"max_ns"`
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// Stats returns the histogram's aggregates, all three quantiles derived
// from one consistent bucket snapshot (zero HistogramStats on nil or
// when nothing was observed).
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	counts, total, end := h.snapshotBuckets()
	if total == 0 {
		return HistogramStats{}
	}
	max := h.max.Load()
	return HistogramStats{
		Count: total,
		SumNs: h.sum.Load(),
		MaxNs: max,
		P50Ns: quantileOf(&counts, total, end, 0.50, max),
		P90Ns: quantileOf(&counts, total, end, 0.90, max),
		P99Ns: quantileOf(&counts, total, end, 0.99, max),
	}
}

// HistBucket is one cumulative exposition bucket: the count of
// observations ≤ UpperNs.
type HistBucket struct {
	UpperNs int64
	Count   int64
}

// CumulativeBuckets returns the histogram's occupied buckets as
// cumulative counts in strictly ascending bound order (the Prometheus
// exposition shape), plus the snapshot's total count. Empty buckets are
// elided — cumulative series need no contiguity, and eliding them also
// drops the one degenerate bucket (index 1, the upper half of octave 0,
// which no integer nanosecond value can land in) whose bound collides
// with bucket 0's. The final bucket count always equals the total,
// which WritePrometheus renders as the +Inf series and _count sample.
func (h *Histogram) CumulativeBuckets() ([]HistBucket, int64) {
	if h == nil {
		return nil, 0
	}
	counts, total, end := h.snapshotBuckets()
	out := make([]HistBucket, 0, end)
	var cum int64
	for i := 0; i < end; i++ {
		if counts[i] == 0 {
			continue
		}
		cum += counts[i]
		out = append(out, HistBucket{UpperNs: bucketUpper(i), Count: cum})
	}
	return out, total
}
