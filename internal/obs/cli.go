package obs

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// CLI holds the observability flag values shared by every cmd tool:
// -metrics, -trace, -debug-addr, -progress-every, plus the pprof flags
// -cpuprofile and -memprofile that used to be copied into each tool.
type CLI struct {
	Metrics       bool
	Trace         string
	DebugAddr     string
	CPUProfile    string
	MemProfile    string
	ProgressEvery time.Duration
}

// AddFlags registers the shared observability flags on fl and returns
// the struct their values land in. Call (*CLI).Start after parsing.
func AddFlags(fl *flag.FlagSet) *CLI {
	c := &CLI{}
	fl.BoolVar(&c.Metrics, "metrics", false, "collect runtime metrics: live progress on stderr plus a final summary")
	fl.StringVar(&c.Trace, "trace", "", "write a structured JSONL event journal to this file")
	fl.StringVar(&c.DebugAddr, "debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	fl.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fl.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fl.DurationVar(&c.ProgressEvery, "progress-every", 2*time.Second, "interval between -metrics progress lines")
	return c
}

// Run is the live observability state of one tool invocation: the Obs
// bundle to hand to instrumented packages (nil when neither -metrics
// nor -trace was given), plus the background machinery (progress
// ticker, debug listener, profiles) torn down by Close.
type Run struct {
	Obs *Obs

	tool         string
	stderr       io.Writer
	start        time.Time
	metrics      bool
	traceFile    *os.File
	stopProf     func() error
	stopProgress func()
}

// Start brings up everything the parsed flags ask for: the metrics
// registry, the trace journal (with a run.start event), the progress
// ticker, the debug listener, and the CPU/heap profiles. It returns a
// *Run whose Close tears all of it down; Run.Obs is nil when no
// observability sink was requested, which instrumented packages treat
// as fully disabled.
func (c *CLI) Start(tool string, stderr io.Writer) (*Run, error) {
	r := &Run{tool: tool, stderr: stderr, start: time.Now(), metrics: c.Metrics}
	var reg *Registry
	var j *Journal
	if c.Metrics {
		reg = NewRegistry()
	}
	if c.Trace != "" {
		f, err := os.Create(c.Trace)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		r.traceFile = f
		j = NewJournal(f)
	}
	if reg != nil || j != nil {
		r.Obs = &Obs{Reg: reg, J: j}
	}
	j.Emit("run.start", F{"tool": tool})
	stopProf, err := StartProfiles(c.CPUProfile, c.MemProfile)
	if err != nil {
		if r.traceFile != nil {
			r.traceFile.Close()
		}
		return nil, err
	}
	r.stopProf = stopProf
	if c.DebugAddr != "" {
		startDebugServer(c.DebugAddr, reg, stderr)
	}
	if reg != nil && c.ProgressEvery > 0 {
		r.stopProgress = startProgress(stderr, reg, c.ProgressEvery)
	}
	return r, nil
}

// Close stops the progress ticker, emits the run.end event, flushes
// the profiles, closes the journal file, and prints the final metrics
// summary. It returns the first error encountered; call it exactly
// once. Close on a nil *Run is a no-op.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	if r.stopProgress != nil {
		r.stopProgress()
	}
	var first error
	if j := r.Obs.Journal(); j != nil {
		j.Emit("run.end", F{"tool": r.tool, "elapsed_ns": time.Since(r.start).Nanoseconds()})
		if err := j.Err(); err != nil {
			first = fmt.Errorf("trace: %w", err)
		}
	}
	if r.stopProf != nil {
		if err := r.stopProf(); err != nil && first == nil {
			first = err
		}
	}
	if r.traceFile != nil {
		if err := r.traceFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("trace: %w", err)
		}
	}
	if r.metrics {
		WriteSummary(r.stderr, r.Obs.Registry().Snapshot(), time.Since(r.start))
	}
	return first
}

// debugReg is the registry served over expvar. It is a process-global
// because expvar.Publish panics on duplicate names; the last Start wins
// (cmd tools start at most one Run).
var (
	debugReg     atomic.Pointer[Registry]
	debugPublish sync.Once
)

// startDebugServer serves expvar (including the live metrics snapshot
// under the "closnet" variable) and net/http/pprof on addr. Listener
// failures are reported to stderr, never fatal: the debug port is an
// aid, not a dependency.
func startDebugServer(addr string, reg *Registry, stderr io.Writer) {
	debugReg.Store(reg)
	debugPublish.Do(func() {
		expvar.Publish("closnet", expvar.Func(func() any {
			return debugReg.Load().Snapshot()
		}))
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(stderr, "obs: debug server: %v\n", err)
		}
	}()
}

// startProgress launches the ticker goroutine that reads the search
// counters from the registry and prints a progress line to w whenever
// the state count moved. The returned stop function terminates the
// goroutine synchronously.
func startProgress(w io.Writer, reg *Registry, every time.Duration) (stop func()) {
	states := reg.Counter("search.states")
	total := reg.Gauge("search.space_total")
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		start := time.Now()
		var last int64
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s := states.Value()
				if s == 0 || s == last {
					continue
				}
				last = s
				fmt.Fprintln(w, progressLine(s, total.Value(), time.Since(start)))
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// progressLine formats one live progress report: states evaluated out
// of the total canonical states, the rate, and the ETA at that rate.
// The total gauge accumulates across searches (closlab -all runs many),
// so the percentage tracks overall progress of the whole invocation.
func progressLine(states, total int64, elapsed time.Duration) string {
	rate := float64(states) / elapsed.Seconds()
	if total > states && rate > 0 {
		eta := time.Duration(float64(total-states) / rate * float64(time.Second))
		return fmt.Sprintf("obs: search %d/%d states (%.1f%%) %s states/s eta %s",
			states, total, 100*float64(states)/float64(total), fmtRate(rate), eta.Round(time.Millisecond))
	}
	return fmt.Sprintf("obs: search %d states %s states/s", states, fmtRate(rate))
}
