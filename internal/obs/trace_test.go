package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestTraceSpanTree: spans nest by parent ID, carry attrs, and are
// journaled as "span" events tagged with the trace ID.
func TestTraceSpanTree(t *testing.T) {
	var sb strings.Builder
	j := NewJournal(&sb, WithRunID("run0"), WithClock(func() int64 { return 7 }))
	tr := NewTrace(j)
	if len(tr.ID()) != 8 {
		t.Fatalf("trace ID %q, want 8 hex chars", tr.ID())
	}

	root := tr.StartSpan("server.request")
	child := root.Child("engine.compute").Attr("op", "evaluate")
	grand := child.Child("core.block_fill")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Completion order: leaf first.
	if spans[0].Name != "core.block_fill" || spans[1].Name != "engine.compute" || spans[2].Name != "server.request" {
		t.Fatalf("span order %v", spans)
	}
	if spans[2].Parent != 0 || spans[1].Parent != spans[2].ID || spans[0].Parent != spans[1].ID {
		t.Fatalf("span parents broken: %+v", spans)
	}
	if spans[1].Attrs["op"] != "evaluate" {
		t.Fatalf("attrs %v", spans[1].Attrs)
	}

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal carries %d lines, want 3", len(lines))
	}
	var ev struct {
		Ev     string `json:"ev"`
		Fields struct {
			Trace  string `json:"trace"`
			Name   string `json:"name"`
			Parent int64  `json:"parent"`
		} `json:"fields"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Ev != "span" || ev.Fields.Trace != tr.ID() || ev.Fields.Name != "core.block_fill" || ev.Fields.Parent == 0 {
		t.Fatalf("journaled span event %+v", ev)
	}
}

// TestTraceSpanCap: past maxTraceSpans, spans are dropped and counted,
// never retained or journaled — a traced search request has a fixed
// footprint.
func TestTraceSpanCap(t *testing.T) {
	var sb strings.Builder
	tr := NewTrace(NewJournal(&sb))
	root := tr.StartSpan("root")
	for i := 0; i < maxTraceSpans+50; i++ {
		root.Child("block").End()
	}
	root.End()
	if got := len(tr.Spans()); got != maxTraceSpans {
		t.Errorf("retained %d spans, want %d", got, maxTraceSpans)
	}
	if got := tr.Dropped(); got != 51 { // 50 extra children + the root itself
		t.Errorf("dropped %d spans, want 51", got)
	}
	if got := strings.Count(sb.String(), "\n"); got != maxTraceSpans {
		t.Errorf("journaled %d span events, want %d", got, maxTraceSpans)
	}
}

// TestTraceConcurrentSpans: spans ending from many goroutines (the
// search-worker shape) race-cleanly serialize into the trace.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace(nil)
	root := tr.StartSpan("search.run")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := root.Child("search.shard").Attr("shard", w)
			for i := 0; i < 32; i++ {
				sp.Child("core.block_fill").End()
			}
			sp.End()
		}(w)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 8*33+1 {
		t.Errorf("got %d spans, want %d", got, 8*33+1)
	}
}

// TestSpanContext: propagation through context.Context, and the off
// state — no span in ctx means nil spans all the way down, with zero
// allocations on the instrumented path.
func TestSpanContext(t *testing.T) {
	ctx := context.Background()
	if SpanFrom(ctx) != nil {
		t.Fatal("empty context carries a span")
	}
	sp, ctx2 := StartSpan(ctx, "x")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without a trace must be a no-op returning ctx unchanged")
	}

	tr := NewTrace(nil)
	root := tr.StartSpan("root")
	ctx = ContextWithSpan(ctx, root)
	child, cctx := StartSpan(ctx, "child")
	if child == nil || SpanFrom(cctx) != child {
		t.Fatal("StartSpan did not thread the child span")
	}
	child.End()
	root.End()
	if spans := tr.Spans(); len(spans) != 2 || spans[0].Parent != spans[1].ID {
		t.Fatalf("spans %+v", tr.Spans())
	}
}

// TestNilTraceDisabled: every operation on nil traces and spans is a
// no-op — the zero-overhead off state of request tracing.
func TestNilTraceDisabled(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.StartSpan("x") != nil || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil trace carries state")
	}
	var s *Span
	s.Attr("k", 1)
	s.End()
	if s.Child("y") != nil {
		t.Error("nil span produced a child")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := SpanFrom(context.Background())
		sp.Child("c").Attr("k", 2).End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f per run, want 0", allocs)
	}
}
