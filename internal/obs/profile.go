package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins CPU profiling into cpuFile and arranges for a
// heap profile to be written to memFile. Either path may be empty to
// skip that profile. The returned stop function flushes and closes the
// profiles; call it exactly once, after the workload finishes (the CLI
// wiring calls it from Run.Close). Formerly package profiling; folded
// into obs so all cmd tools share one flag-registration helper.
func StartProfiles(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
