package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): every counter as a `_total`
// counter, every gauge as a gauge, and every timer and histogram as a
// cumulative-bucket histogram in base seconds with `_bucket`, `_sum`
// and `_count` series. Metric names are prefixed `closnet_` and
// sanitized (dots become underscores), families are sorted by name, and
// within a histogram the `le` bounds ascend strictly — so the output is
// deterministic for a given registry state and passes LintExposition by
// construction. A nil registry writes nothing.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.timers)+len(r.histograms))
	for name, t := range r.timers {
		hists[name] = t.hist()
	}
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()

	for _, name := range sortedNames(counters) {
		pn := promName(name) + "_total"
		fmt.Fprintf(bw, "# HELP %s closnet counter %s\n", pn, name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, counters[name].Value())
	}
	for _, name := range sortedNames(gauges) {
		pn := promName(name)
		fmt.Fprintf(bw, "# HELP %s closnet gauge %s\n", pn, name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, gauges[name].Value())
	}
	for _, name := range sortedNames(hists) {
		pn := promName(name) + "_seconds"
		fmt.Fprintf(bw, "# HELP %s closnet duration histogram %s\n", pn, name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		h := hists[name]
		buckets, total := h.CumulativeBuckets()
		for _, b := range buckets {
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, promSeconds(b.UpperNs), b.Count)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, total)
		fmt.Fprintf(bw, "%s_sum %s\n", pn, promSeconds(h.sum.Load()))
		fmt.Fprintf(bw, "%s_count %d\n", pn, total)
	}
	return bw.Flush()
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// promName sanitizes a registry metric name into the Prometheus
// alphabet [a-zA-Z0-9_] under the closnet_ namespace: dots (the
// registry's separator) and any other invalid rune become underscores.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len("closnet_") + len(name))
	sb.WriteString("closnet_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promSeconds renders nanoseconds as base-unit seconds, the Prometheus
// convention. strconv 'g' keeps the rendering shortest-round-trip, so
// bounds stay distinct and strictly ordered.
func promSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// LintExposition validates a Prometheus text exposition the way the CI
// metrics smoke needs, without an external promtool: every sample line
// parses, every sample belongs to a `# TYPE`-declared family, at least
// one family exists, and every histogram family satisfies the format's
// invariants — strictly increasing finite `le` bounds, non-decreasing
// cumulative bucket counts, a final `+Inf` bucket, and `_sum`/`_count`
// samples with `_count` equal to the `+Inf` bucket.
func LintExposition(r io.Reader) error {
	type histState struct {
		lastLe     float64
		lastCount  float64
		buckets    int
		infCount   float64
		hasInf     bool
		hasSum     bool
		count      float64
		hasCount   bool
		sampleSeen bool
	}
	types := make(map[string]string) // family name → type
	hists := make(map[string]*histState)
	samples := 0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, kind := fields[2], fields[3]
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				types[name] = kind
				if kind == "histogram" {
					hists[name] = &histState{lastLe: -1, lastCount: -1}
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name {
				if _, ok := hists[base]; ok {
					family = base
				}
				break
			}
		}
		kind, declared := types[family]
		if !declared {
			return fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, name)
		}
		if kind != "histogram" {
			continue
		}
		h := hists[family]
		h.sampleSeen = true
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: bucket sample without le label", lineNo)
			}
			if le == "+Inf" {
				h.hasInf = true
				h.infCount = value
				break
			}
			if h.hasInf {
				return fmt.Errorf("line %d: %s bucket after +Inf", lineNo, family)
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("line %d: unparseable le %q", lineNo, le)
			}
			if bound <= h.lastLe {
				return fmt.Errorf("line %d: %s le %v not strictly above %v", lineNo, family, bound, h.lastLe)
			}
			if value < h.lastCount {
				return fmt.Errorf("line %d: %s cumulative bucket count %v fell below %v", lineNo, family, value, h.lastCount)
			}
			h.lastLe, h.lastCount, h.buckets = bound, value, h.buckets+1
		case strings.HasSuffix(name, "_sum"):
			h.hasSum = true
		case strings.HasSuffix(name, "_count"):
			h.hasCount = true
			h.count = value
		default:
			return fmt.Errorf("line %d: unexpected histogram sample %s", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("exposition carries no samples")
	}
	for name, h := range hists {
		if !h.sampleSeen {
			return fmt.Errorf("histogram %s declared but has no samples", name)
		}
		if !h.hasInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", name)
		}
		if h.lastCount > h.infCount {
			return fmt.Errorf("histogram %s +Inf bucket %v below last finite bucket %v", name, h.infCount, h.lastCount)
		}
		if !h.hasSum {
			return fmt.Errorf("histogram %s has no _sum sample", name)
		}
		if !h.hasCount {
			return fmt.Errorf("histogram %s has no _count sample", name)
		}
		if h.count != h.infCount {
			return fmt.Errorf("histogram %s _count %v != +Inf bucket %v", name, h.count, h.infCount)
		}
	}
	return nil
}

// parseSample splits one exposition sample line into metric name, label
// map and value. Label values are Go-quoted in our output; the parser
// accepts any backslash-escaped quoted string.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated labels in %q", line)
		}
		labels = make(map[string]string)
		for _, pair := range strings.Split(rest[1:end], ",") {
			if pair == "" {
				continue
			}
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			val, uerr := strconv.Unquote(kv[1])
			if uerr != nil {
				return "", nil, 0, fmt.Errorf("malformed label value %q", kv[1])
			}
			labels[kv[0]] = val
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("malformed value %q", rest)
	}
	return name, labels, v, nil
}
