package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"sync"
	"testing"
)

// TestJournalEmitDeterministic pins the wire format byte-for-byte under
// an injected clock and run ID — the same determinism the search
// golden-file test builds on. encoding/json writes map keys sorted, so
// the field order is stable.
func TestJournalEmitDeterministic(t *testing.T) {
	var buf bytes.Buffer
	var tick int64
	j := NewJournal(&buf,
		WithRunID("testrun"),
		WithClock(func() int64 { tick += 1000; return tick }))
	j.Emit("run.start", F{"tool": "x", "n": 3})
	j.Emit("plain", nil)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	want := `{"t_ns":1000,"run":"testrun","ev":"run.start","fields":{"n":3,"tool":"x"}}
{"t_ns":2000,"run":"testrun","ev":"plain"}
`
	if got := buf.String(); got != want {
		t.Errorf("journal bytes:\n got %q\nwant %q", got, want)
	}
	if j.RunID() != "testrun" {
		t.Errorf("run ID = %q, want testrun", j.RunID())
	}
}

// TestJournalDefaultRunID: without options the run ID is 8 random hex
// characters and timestamps are monotone non-decreasing.
func TestJournalDefaultRunID(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	if len(j.RunID()) != 8 {
		t.Errorf("run ID %q, want 8 hex chars", j.RunID())
	}
	j.Emit("a", nil)
	j.Emit("b", nil)
	var prev int64 = -1
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e struct {
			TNs int64  `json:"t_ns"`
			Run string `json:"run"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if e.Run != j.RunID() {
			t.Errorf("line run ID %q, want %q", e.Run, j.RunID())
		}
		if e.TNs < prev {
			t.Errorf("timestamps not monotone: %d after %d", e.TNs, prev)
		}
		prev = e.TNs
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// TestJournalStickyError: the first write failure is remembered, later
// emits become no-ops, and Err reports the original failure — so
// instrumented code never handles journal errors inline.
func TestJournalStickyError(t *testing.T) {
	j := NewJournal(failWriter{}, WithRunID("r"), WithClock(func() int64 { return 0 }))
	j.Emit("a", nil)
	err := j.Err()
	if err == nil || err.Error() != "disk full" {
		t.Fatalf("Err() = %v, want disk full", err)
	}
	j.Emit("b", nil) // must not panic, must not clobber the error
	if got := j.Err(); got != err {
		t.Errorf("sticky error changed: %v", got)
	}
}

// TestJournalEncodeError: an unmarshalable field value is also sticky.
func TestJournalEncodeError(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, WithRunID("r"))
	j.Emit("bad", F{"fn": func() {}})
	if j.Err() == nil {
		t.Error("unmarshalable field did not surface as Err")
	}
	if buf.Len() != 0 {
		t.Errorf("partial line written: %q", buf.String())
	}
}

// TestJournalNil: every method of a nil journal is a safe no-op.
func TestJournalNil(t *testing.T) {
	var j *Journal
	j.Emit("ev", F{"k": 1})
	if j.Err() != nil || j.RunID() != "" {
		t.Error("nil journal carries state")
	}
}

// syncBuffer makes bytes.Buffer safe for the raw concurrent writes of
// TestJournalConcurrent's verification pass.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// TestJournalConcurrent: emits from many goroutines interleave as whole
// lines — every line parses as one JSON event and none are lost.
func TestJournalConcurrent(t *testing.T) {
	var buf syncBuffer
	j := NewJournal(&buf, WithRunID("conc"))
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j.Emit("tick", F{"g": g, "i": i})
			}
		}(g)
	}
	wg.Wait()
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf.buf)
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("torn journal line: %q", sc.Text())
		}
		lines++
	}
	if lines != goroutines*perG {
		t.Errorf("journal has %d lines, want %d", lines, goroutines*perG)
	}
}

var _ io.Writer = (*syncBuffer)(nil)
