package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries: every bucket's inclusive upper bound maps back
// into the bucket, and the bound right above it maps into the next one
// — the two functions agree on every boundary of the int64 range.
func TestBucketBoundaries(t *testing.T) {
	for idx := 0; idx < numHistBuckets-2; idx++ {
		if idx == 1 {
			// The upper half of octave 0 ([1.5, 2)) holds no integer; its
			// bound collides with bucket 0's and no observation reaches it.
			continue
		}
		u := bucketUpper(idx)
		if got := bucketIndex(u); got != idx {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", idx, u, got)
		}
		if u < math.MaxInt64 {
			next := idx + 1
			if idx == 0 {
				next = 2 // 2 opens octave 1 directly; bucket 1 is the degenerate gap
			}
			if got := bucketIndex(u + 1); got != next {
				t.Fatalf("bucketIndex(%d) = %d, want %d", u+1, got, next)
			}
		}
	}
	// Non-positive and unit observations share bucket 0.
	for _, v := range []int64{-5, 0, 1} {
		if got := bucketIndex(v); got != 0 {
			t.Errorf("bucketIndex(%d) = %d, want 0", v, got)
		}
	}
	if got := bucketIndex(math.MaxInt64); got >= numHistBuckets {
		t.Errorf("bucketIndex(MaxInt64) = %d overflows the %d buckets", got, numHistBuckets)
	}
}

// TestHistogramQuantileErrorBound is the property test of the
// documented estimation bound: for random samples, every estimated
// quantile e of a true (sorted-reference) value v satisfies
// v ≤ e < 1.5·v, and the exact aggregates match.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		h := &Histogram{}
		sample := make([]int64, n)
		var sum int64
		for i := range sample {
			// Mix magnitudes: sub-µs to tens of ms.
			v := int64(1 + rng.Intn(1<<(1+rng.Intn(25))))
			sample[i] = v
			sum += v
			h.Observe(time.Duration(v))
		}
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			truth := sample[rank-1]
			est := h.Quantile(q)
			if est < truth || float64(est) >= 1.5*float64(truth) {
				t.Fatalf("trial %d n=%d q=%v: estimate %d outside [v, 1.5v) for true %d",
					trial, n, q, est, truth)
			}
		}
		st := h.Stats()
		if st.Count != int64(n) || st.SumNs != sum || st.MaxNs != sample[n-1] {
			t.Fatalf("stats %+v, want count=%d sum=%d max=%d", st, n, sum, sample[n-1])
		}
	}
}

// TestHistogramConcurrent race-hammers one histogram from many
// goroutines and asserts no observation was lost: the total count, sum
// and max are conserved, and the bucket counts sum to the total.
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(1 + rng.Intn(1<<20)))
				if i%1000 == 0 {
					_ = h.Stats()
					_, _ = h.CumulativeBuckets()
				}
			}
		}(g)
	}
	wg.Wait()
	st := h.Stats()
	if st.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", st.Count, goroutines*perG)
	}
	buckets, total := h.CumulativeBuckets()
	if total != goroutines*perG {
		t.Errorf("bucket total = %d, want %d", total, goroutines*perG)
	}
	if len(buckets) == 0 || buckets[len(buckets)-1].Count != total {
		t.Errorf("cumulative buckets %v do not end at the total %d", buckets, total)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Count < buckets[i-1].Count || buckets[i].UpperNs <= buckets[i-1].UpperNs {
			t.Fatalf("bucket %d (%+v) not monotone over %+v", i, buckets[i], buckets[i-1])
		}
	}
}

// TestHistogramObserveNoAlloc pins the hot-path contract: Observe on a
// live histogram (and on the timer wrapping one) allocates nothing.
func TestHistogramObserveNoAlloc(t *testing.T) {
	h := &Histogram{}
	reg := NewRegistry()
	tm := reg.Timer("t")
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(time.Millisecond)
		tm.Observe(time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %.1f per run, want 0", allocs)
	}
}

// TestHistogramNil: the off state. Every operation on a nil histogram
// is a no-op returning zero values.
func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Stats() != (HistogramStats{}) {
		t.Error("nil histogram carries state")
	}
	if b, total := h.CumulativeBuckets(); b != nil || total != 0 {
		t.Error("nil histogram has buckets")
	}
}

// TestHistogramEmpty: a registered but never-observed histogram reports
// all-zero stats and quantiles.
func TestHistogramEmpty(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("empty")
	if h.Stats() != (HistogramStats{}) || h.Quantile(0.99) != 0 {
		t.Error("empty histogram reports non-zero stats")
	}
	if snap := reg.Snapshot(); snap.Histograms["empty"] != (HistogramStats{}) {
		t.Error("empty histogram snapshot not zero")
	}
}

// TestTimerQuantiles: the retrofit — every registered timer reports
// percentile estimates alongside the exact aggregates, and a shared
// handle accumulates into one distribution.
func TestTimerQuantiles(t *testing.T) {
	reg := NewRegistry()
	tm := reg.Timer("lat")
	for i := 1; i <= 1000; i++ {
		tm.Observe(time.Duration(i) * time.Microsecond)
	}
	st := tm.Stats()
	if st.Count != 1000 || st.MinNs != 1000 || st.MaxNs != 1000*1000 {
		t.Fatalf("timer aggregates %+v", st)
	}
	check := func(name string, got, truth int64) {
		if got < truth || float64(got) >= 1.5*float64(truth) {
			t.Errorf("%s = %d outside [v, 1.5v) for true %d", name, got, truth)
		}
	}
	check("p50", st.P50Ns, 500*1000)
	check("p90", st.P90Ns, 900*1000)
	check("p99", st.P99Ns, 990*1000)
	if snap := reg.Snapshot(); snap.Timers["lat"].P99Ns != st.P99Ns {
		t.Error("snapshot does not carry timer quantiles")
	}
}
