// Package obs is the runtime observability layer: an atomic metrics
// registry (counters, gauges, histogram-style timers), a structured
// JSONL event journal, and the shared command-line wiring (flags,
// periodic progress reporting, pprof/expvar debug listener, CPU/heap
// profiles) used by every cmd tool.
//
// The package is dependency-free (standard library only) and designed
// so that hot paths pay nothing when observability is disabled: code
// holds preregistered handles (*Counter, *Gauge, *Timer) and a nil
// handle — what a nil *Registry hands out — makes every operation a
// single predictable nil check with zero allocations. The same
// convention extends to *Journal and the *Obs bundle: nil receivers are
// valid and inert, so instrumented packages never branch on an
// "enabled" flag of their own.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op, so hot paths can hold
// handles unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer aggregates durations: count, sum, min, max and a log-bucketed
// latency histogram, all in nanoseconds and all updated atomically, so
// every registered timer reports p50/p90/p99 estimates (see Histogram
// for the bucket math and the quantile error bound). A nil *Timer is a
// no-op.
type Timer struct {
	min atomic.Int64 // primed to MaxInt64 by the registry
	h   Histogram    // owns count, sum, max and the buckets
}

// newTimer returns a Timer whose min is primed so the first observation
// always wins. Stats masks the sentinel: an unobserved timer reports
// zero-valued TimerStats, never the primed MaxInt64.
func newTimer() *Timer {
	t := &Timer{}
	t.min.Store(math.MaxInt64)
	return t
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	ns := d.Nanoseconds()
	t.h.observe(ns)
	for {
		cur := t.min.Load()
		if ns >= cur || t.min.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Stats returns the timer's aggregates (zero TimerStats on nil or when
// nothing was observed — a registered-but-never-observed timer must
// report 0, not the primed sentinel min).
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	hs := t.h.Stats()
	if hs.Count == 0 {
		return TimerStats{}
	}
	return TimerStats{
		Count: hs.Count,
		SumNs: hs.SumNs,
		MinNs: t.min.Load(),
		MaxNs: hs.MaxNs,
		P50Ns: hs.P50Ns,
		P90Ns: hs.P90Ns,
		P99Ns: hs.P99Ns,
	}
}

// hist exposes the timer's histogram to the Prometheus exposition
// writer, which renders every timer as a cumulative-bucket series.
func (t *Timer) hist() *Histogram {
	if t == nil {
		return nil
	}
	return &t.h
}

// TimerStats is the JSON-serializable aggregate of a Timer. The
// quantiles are histogram estimates (exact count/sum/min/max; see the
// Histogram error bound).
type TimerStats struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	MinNs int64 `json:"min_ns"`
	MaxNs int64 `json:"max_ns"`
	P50Ns int64 `json:"p50_ns,omitempty"`
	P90Ns int64 `json:"p90_ns,omitempty"`
	P99Ns int64 `json:"p99_ns,omitempty"`
}

// Registry names and hands out metric handles. Handles are created on
// first use and shared by name afterwards, so concurrent subsystems
// (e.g. search workers) accumulate into the same metric. A nil
// *Registry hands out nil handles, which disables instrumentation with
// zero allocations on the instrumented paths; this is the intended
// "off" state.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it if needed. Returns nil on
// a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = newTimer()
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it if needed. Returns
// nil on a nil registry. Timers already carry a histogram internally;
// a standalone registry histogram is for distributions that are not
// durations observed around a code region (e.g. client-side latencies
// fed from elsewhere).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric,
// JSON-serializable (it is embedded in BENCH_search.json and served
// over expvar).
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Timers     map[string]TimerStats     `json:"timers,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies the current metric values. Safe to call concurrently
// with metric updates; returns a zero Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerStats, len(r.timers))
		for name, t := range r.timers {
			s.Timers[name] = t.Stats()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.Stats()
		}
	}
	return s
}

// Obs bundles the two observability sinks handed to instrumented
// packages. Either field may be nil; a nil *Obs disables everything.
type Obs struct {
	Reg *Registry
	J   *Journal
}

// Registry returns the bundle's registry (nil when o is nil).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Journal returns the bundle's journal (nil when o is nil).
func (o *Obs) Journal() *Journal {
	if o == nil {
		return nil
	}
	return o.J
}

// WriteSummary renders a snapshot as an aligned text block (the final
// -metrics report of the cmd tools), with metrics sorted by name and a
// derived states/sec line when the search instrumentation is present.
func WriteSummary(w io.Writer, snap Snapshot, elapsed time.Duration) {
	fmt.Fprintf(w, "obs: metrics after %s\n", elapsed.Round(time.Millisecond))
	for _, name := range sortedKeys(snap.Counters) {
		fmt.Fprintf(w, "obs:   counter %-28s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(w, "obs:   gauge   %-28s %d\n", name, snap.Gauges[name])
	}
	timerNames := make([]string, 0, len(snap.Timers))
	for name := range snap.Timers {
		timerNames = append(timerNames, name)
	}
	sort.Strings(timerNames)
	for _, name := range timerNames {
		ts := snap.Timers[name]
		fmt.Fprintf(w, "obs:   timer   %-28s count=%d sum=%s min=%s p50=%s p90=%s p99=%s max=%s\n",
			name, ts.Count,
			time.Duration(ts.SumNs).Round(time.Microsecond),
			time.Duration(ts.MinNs).Round(time.Microsecond),
			time.Duration(ts.P50Ns).Round(time.Microsecond),
			time.Duration(ts.P90Ns).Round(time.Microsecond),
			time.Duration(ts.P99Ns).Round(time.Microsecond),
			time.Duration(ts.MaxNs).Round(time.Microsecond))
	}
	histNames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		hs := snap.Histograms[name]
		fmt.Fprintf(w, "obs:   hist    %-28s count=%d p50=%s p90=%s p99=%s max=%s\n",
			name, hs.Count,
			time.Duration(hs.P50Ns).Round(time.Microsecond),
			time.Duration(hs.P90Ns).Round(time.Microsecond),
			time.Duration(hs.P99Ns).Round(time.Microsecond),
			time.Duration(hs.MaxNs).Round(time.Microsecond))
	}
	if states := snap.Counters["search.states"]; states > 0 {
		if d := snap.Timers["search.duration"]; d.SumNs > 0 {
			rate := float64(states) / (float64(d.SumNs) / 1e9)
			fmt.Fprintf(w, "obs:   derived %-28s %s\n", "search.states_per_sec", fmtRate(rate))
		}
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtRate renders an events-per-second rate with a k/M suffix.
func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.1f", r)
	}
}
