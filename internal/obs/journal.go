package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// F is the free-form field set of one journal event. encoding/json
// serializes map keys in sorted order, so event lines are byte-stable
// for a given field set — a property the golden-file tests rely on.
type F map[string]any

// event is the wire form of one journal line.
type event struct {
	TNs    int64  `json:"t_ns"`
	Run    string `json:"run"`
	Ev     string `json:"ev"`
	Fields F      `json:"fields,omitempty"`
}

// Journal writes structured events as JSON Lines: one JSON object per
// line, each carrying a monotonic timestamp (nanoseconds since the
// journal was opened), the run ID, the event name, and free-form
// fields. Writes are serialized by a mutex, so a Journal is safe for
// concurrent use by search workers. A nil *Journal is a no-op.
type Journal struct {
	mu    sync.Mutex
	w     io.Writer
	runID string
	clock func() int64
	err   error // first write/encode error, sticky
}

// JournalOption customizes a Journal at construction.
type JournalOption func(*Journal)

// WithRunID pins the journal's run ID (the default is a random hex
// string). Tests inject a stable ID here.
func WithRunID(id string) JournalOption {
	return func(j *Journal) { j.runID = id }
}

// WithClock replaces the monotonic timestamp source (nanoseconds).
// Tests inject a deterministic clock here.
func WithClock(fn func() int64) JournalOption {
	return func(j *Journal) { j.clock = fn }
}

// NewJournal opens a journal over w. The default clock is monotonic
// time since this call; the default run ID is 8 random hex bytes.
func NewJournal(w io.Writer, opts ...JournalOption) *Journal {
	j := &Journal{w: w}
	for _, opt := range opts {
		opt(j)
	}
	if j.runID == "" {
		j.runID = newRunID()
	}
	if j.clock == nil {
		start := time.Now()
		j.clock = func() int64 { return time.Since(start).Nanoseconds() }
	}
	return j
}

// newRunID returns 8 random hex bytes (crypto/rand never fails on the
// supported platforms; on the impossible error path the ID degrades to
// a constant, which only affects log labeling).
func newRunID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// RunID returns the journal's run ID ("" on a nil journal).
func (j *Journal) RunID() string {
	if j == nil {
		return ""
	}
	return j.runID
}

// Emit appends one event. Errors are sticky and reported by Err rather
// than per call, so instrumented code paths never handle them inline.
func (j *Journal) Emit(ev string, fields F) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	line, err := json.Marshal(event{TNs: j.clock(), Run: j.runID, Ev: ev, Fields: fields})
	if err != nil {
		j.err = err
		return
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		j.err = err
	}
}

// Err returns the first write or encode error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
