package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// maxTraceSpans bounds how many completed spans one trace retains (and
// journals): a traced search request would otherwise emit a span per
// evaluated block. Past the cap, spans are counted as dropped instead
// of recorded, so a trace's memory and journal footprint is fixed.
const maxTraceSpans = 512

// Trace is the request-scoped tracing context: an 8-hex-char random ID
// (the X-Closnet-Request-Id of the serving layer) plus the bounded set
// of completed spans. Spans end concurrently — search workers each
// close their shard span — so completion is mutex-serialized; starting
// a span is lock-free. A nil *Trace is a no-op, the off state every
// instrumented path pays for with one nil check.
//
// When a Journal is attached, each completed span is also emitted as a
// "span" event, carrying the trace ID so journal consumers can stitch
// the request tree across the run's interleaved requests.
type Trace struct {
	id    string
	j     *Journal
	start time.Time

	nextID atomic.Int64

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
}

// SpanRecord is the completed, serializable form of one span. Times are
// nanoseconds since the trace started, so a request's records are
// self-consistent without a shared clock.
type SpanRecord struct {
	ID      int64  `json:"id"`
	Parent  int64  `json:"parent,omitempty"` // 0 = root span
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Attrs   F      `json:"attrs,omitempty"`
}

// NewTrace starts a trace with a fresh random ID. j may be nil: spans
// are then only retained in memory (for the flight recorder), not
// journaled.
func NewTrace(j *Journal) *Trace {
	return &Trace{id: newRunID(), j: j, start: time.Now()}
}

// ID returns the trace's 8-hex-char ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a root-level span (no parent). Use Span.Child for
// nesting. Returns nil on a nil trace.
func (t *Trace) StartSpan(name string) *Span {
	return t.startSpan(name, 0)
}

func (t *Trace) startSpan(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tr:     t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  time.Since(t.start).Nanoseconds(),
	}
}

// Spans returns a copy of the completed spans recorded so far.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped returns how many spans ended past the maxTraceSpans cap.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// finish records one completed span, or counts it as dropped past the
// cap; recorded spans are also journaled.
func (t *Trace) finish(rec SpanRecord) {
	t.mu.Lock()
	if len(t.spans) >= maxTraceSpans {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
	if t.j == nil {
		return
	}
	fields := F{
		"trace": t.id, "span": rec.ID, "name": rec.Name,
		"start_ns": rec.StartNs, "dur_ns": rec.DurNs,
	}
	if rec.Parent != 0 {
		fields["parent"] = rec.Parent
	}
	if rec.Attrs != nil {
		fields["attrs"] = rec.Attrs
	}
	t.j.Emit("span", fields)
}

// Span is one in-flight timed region of a trace. All methods are
// nil-safe, so code paths instrument unconditionally and a request
// without a trace costs one nil check per touch point, no allocations.
// A span is owned by one goroutine until End; children may end on other
// goroutines (the trace serializes completion).
type Span struct {
	tr     *Trace
	id     int64
	parent int64
	name   string
	start  int64
	attrs  F
}

// Child opens a sub-span. Returns nil on a nil receiver, so span trees
// degrade to no-ops wholesale when tracing is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.startSpan(name, s.id)
}

// Attr attaches one key/value to the span (shown in the journal event
// and the flight-recorder summary). Returns s for chaining.
func (s *Span) Attr(key string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = F{}
	}
	s.attrs[key] = v
	return s
}

// End completes the span, recording it on its trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.finish(SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNs: s.start,
		DurNs:   time.Since(s.tr.start).Nanoseconds() - s.start,
		Attrs:   s.attrs,
	})
}

// spanCtxKey carries the current *Span through context.Context, from
// the server middleware down into engine, search and core code.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s as the current span. A nil
// span returns ctx unchanged (and unallocated).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the current span of ctx, or nil. Hot loops resolve
// it once and hold the (possibly nil) *Span.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of ctx's current span and returns it together
// with a context carrying it, the idiom for request-level call layers:
//
//	sp, ctx := obs.StartSpan(ctx, "engine.compute")
//	defer sp.End()
//
// Without a span in ctx it returns (nil, ctx) at zero cost beyond the
// context lookup.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	cur := SpanFrom(ctx)
	if cur == nil {
		return nil, ctx
	}
	child := cur.Child(name)
	return child, ContextWithSpan(ctx, child)
}
