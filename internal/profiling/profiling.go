// Package profiling wires the standard runtime/pprof collectors into the
// command-line tools. Both cmd/closlab and cmd/closverify expose
// -cpuprofile and -memprofile flags backed by Start, so hot paths — the
// routing-space search and the Rat64 evaluation kernel in particular —
// can be profiled on real workloads without a test harness.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuFile and arranges for a heap
// profile to be written to memFile. Either path may be empty to skip
// that profile. The returned stop function flushes and closes the
// profiles; call it exactly once, after the workload finishes (typically
// via defer in main's run function).
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
