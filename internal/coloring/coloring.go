// Package coloring implements constructive edge coloring of bipartite
// multigraphs (König's edge-coloring theorem): a bipartite multigraph with
// maximum degree Δ admits a proper Δ-edge-coloring.
//
// In the paper (footnote 5 and Lemma 5.2), an n-edge-coloring of the
// bipartite multigraph G^C — whose nodes are input/output ToR switches and
// whose edges are flows — corresponds to a link-disjoint routing of the
// flows in the Clos network C_n: all edges of color m are assigned to
// middle switch M_m. Step 2 of the Doom-Switch algorithm (Algorithm 1)
// uses exactly this correspondence.
//
// The implementation colors edges one at a time, repairing conflicts by
// flipping alternating Kempe chains; it runs in O(E·(V+E)) worst case,
// which is ample for the instance sizes of this library.
package coloring

import (
	"fmt"

	"closnet/internal/matching"
)

const none = -1

// EdgeColor returns a proper edge coloring of the bipartite multigraph g
// using at most `colors` colors: no two edges sharing an endpoint receive
// the same color. Colors are 0-based; the result is indexed like g.Edges.
//
// By König's theorem a coloring exists whenever colors ≥ g.MaxDegree();
// EdgeColor returns an error otherwise, and also if g is malformed.
func EdgeColor(g matching.Graph, colors int) ([]int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if d := g.MaxDegree(); colors < d {
		return nil, fmt.Errorf("coloring: %d colors < maximum degree %d", colors, d)
	}
	st := &state{
		g:     g,
		atL:   newTable(g.NumLeft, colors),
		atR:   newTable(g.NumRight, colors),
		color: make([]int, len(g.Edges)),
	}
	for i := range st.color {
		st.color[i] = none
	}

	for ei, e := range g.Edges {
		a := freeAt(st.atL, e.Left)  // free at left endpoint
		b := freeAt(st.atR, e.Right) // free at right endpoint
		if a == none || b == none {
			// Impossible while colors ≥ max degree: an endpoint with all
			// colors occupied would have degree > colors.
			return nil, fmt.Errorf("coloring: no free color at edge %d (internal invariant violated)", ei)
		}
		if st.atR[e.Right][a] != none {
			// Color a is busy at the right endpoint. Flip the maximal
			// alternating (a, b)-chain starting at the right endpoint.
			// In a bipartite graph the chain reaches left nodes only via
			// a-colored edges, and a is free at e.Left, so the chain
			// never touches e.Left; after the flip, a is free at both
			// endpoints.
			st.flipChain(e.Right, a, b)
		}
		st.assign(ei, a)
	}
	return st.color, nil
}

type state struct {
	g        matching.Graph
	atL, atR [][]int // (node, color) -> edge index or none
	color    []int   // edge index -> color or none
}

func newTable(nodes, colors int) [][]int {
	t := make([][]int, nodes)
	backing := make([]int, nodes*colors)
	for i := range backing {
		backing[i] = none
	}
	for i := range t {
		t[i], backing = backing[:colors], backing[colors:]
	}
	return t
}

func freeAt(table [][]int, node int) int {
	for c, e := range table[node] {
		if e == none {
			return c
		}
	}
	return none
}

func (st *state) assign(ei, c int) {
	e := st.g.Edges[ei]
	st.color[ei] = c
	st.atL[e.Left][c] = ei
	st.atR[e.Right][c] = ei
}

// flipChain collects the maximal alternating chain of colors (a, b)
// starting at right node r with an a-colored edge, then swaps colors a
// and b along it. The chain is a simple path (every node has at most one
// edge of each color), so collection terminates.
func (st *state) flipChain(r, a, b int) {
	var chain []int
	node, onRight, want := r, true, a
	for {
		var ei int
		if onRight {
			ei = st.atR[node][want]
		} else {
			ei = st.atL[node][want]
		}
		if ei == none {
			break
		}
		chain = append(chain, ei)
		e := st.g.Edges[ei]
		if onRight {
			node = e.Left
		} else {
			node = e.Right
		}
		onRight = !onRight
		if want == a {
			want = b
		} else {
			want = a
		}
	}
	// Clear all chain entries first, then re-add with swapped colors:
	// recoloring in place would clobber the neighbors' table slots.
	for _, ei := range chain {
		e := st.g.Edges[ei]
		c := st.color[ei]
		st.atL[e.Left][c] = none
		st.atR[e.Right][c] = none
	}
	for _, ei := range chain {
		c := st.color[ei]
		if c == a {
			c = b
		} else {
			c = a
		}
		st.assign(ei, c)
	}
}

// Verify reports an error unless color is a proper edge coloring of g
// using colors in [0, colors).
func Verify(g matching.Graph, color []int, colors int) error {
	if len(color) != len(g.Edges) {
		return fmt.Errorf("coloring: %d colors for %d edges", len(color), len(g.Edges))
	}
	seenL := make(map[[2]int]int)
	seenR := make(map[[2]int]int)
	for ei, c := range color {
		if c < 0 || c >= colors {
			return fmt.Errorf("coloring: edge %d has color %d, want [0,%d)", ei, c, colors)
		}
		e := g.Edges[ei]
		if other, ok := seenL[[2]int{e.Left, c}]; ok {
			return fmt.Errorf("coloring: edges %d and %d share left node %d with color %d", other, ei, e.Left, c)
		}
		if other, ok := seenR[[2]int{e.Right, c}]; ok {
			return fmt.Errorf("coloring: edges %d and %d share right node %d with color %d", other, ei, e.Right, c)
		}
		seenL[[2]int{e.Left, c}] = ei
		seenR[[2]int{e.Right, c}] = ei
	}
	return nil
}

// ClassSizes returns the number of edges per color class.
func ClassSizes(color []int, colors int) []int {
	sizes := make([]int, colors)
	for _, c := range color {
		if c >= 0 && c < colors {
			sizes[c]++
		}
	}
	return sizes
}
