package coloring

import (
	"math/rand"
	"testing"

	"closnet/internal/matching"
)

// bg builds a bipartite multigraph from (left, right) endpoint pairs.
func bg(nl, nr int, pairs ...int) matching.Graph {
	g := matching.Graph{NumLeft: nl, NumRight: nr}
	for i := 0; i < len(pairs); i += 2 {
		g.Edges = append(g.Edges, matching.Edge{Left: pairs[i], Right: pairs[i+1]})
	}
	return g
}

func TestEdgeColorSimpleCases(t *testing.T) {
	tests := []struct {
		name   string
		g      matching.Graph
		colors int
	}{
		{"empty", matching.Graph{NumLeft: 2, NumRight: 2}, 0},
		{"single edge", bg(1, 1, 0, 0), 1},
		{"parallel edges", bg(1, 1, 0, 0, 0, 0, 0, 0), 3},
		{"path needs 2", bg(2, 1, 0, 0, 1, 0), 2},
		{
			"perfect matching needs 1",
			bg(3, 3, 0, 0, 1, 1, 2, 2),
			1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			color, err := EdgeColor(tt.g, tt.colors)
			if err != nil {
				t.Fatalf("EdgeColor: %v", err)
			}
			if err := Verify(tt.g, color, tt.colors); err != nil {
				t.Errorf("Verify: %v", err)
			}
		})
	}
}

func TestEdgeColorRejectsTooFewColors(t *testing.T) {
	g := bg(1, 2, 0, 0, 0, 1) // degree 2
	if _, err := EdgeColor(g, 1); err == nil {
		t.Error("expected error: 1 color for degree-2 graph")
	}
	bad := bg(1, 1, 0, 5)
	if _, err := EdgeColor(bad, 3); err == nil {
		t.Error("expected error: malformed graph")
	}
}

// TestEdgeColorKempeChain forces the Kempe-chain repair path: a C-shaped
// instance where the free colors at the two endpoints differ.
func TestEdgeColorKempeChain(t *testing.T) {
	// Edges in an order that forces a flip when coloring the last edge.
	// Edge order: (0,0) gets color 0, (1,0) gets color 1, (1,1) gets
	// color 0; the final edge (0,1) finds color 1 free on the left but
	// busy on the right, forcing a chain flip.
	g := bg(2, 2, 0, 0, 1, 0, 1, 1, 0, 1)
	color, err := EdgeColor(g, 2)
	if err != nil {
		t.Fatalf("EdgeColor: %v", err)
	}
	if err := Verify(g, color, 2); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// TestEdgeColorCompleteBipartite colors K_{n,n} (degree n) with n colors.
func TestEdgeColorCompleteBipartite(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		g := matching.Graph{NumLeft: n, NumRight: n}
		for l := 0; l < n; l++ {
			for r := 0; r < n; r++ {
				g.Edges = append(g.Edges, matching.Edge{Left: l, Right: r})
			}
		}
		color, err := EdgeColor(g, n)
		if err != nil {
			t.Fatalf("K_{%d,%d}: %v", n, n, err)
		}
		if err := Verify(g, color, n); err != nil {
			t.Fatalf("K_{%d,%d}: %v", n, n, err)
		}
		// Each color class must be a perfect matching of size n.
		for c, size := range ClassSizes(color, n) {
			if size != n {
				t.Errorf("K_{%d,%d}: color %d has %d edges, want %d", n, n, c, size, n)
			}
		}
	}
}

// TestEdgeColorRandomMultigraphs colors random multigraphs with exactly
// max-degree colors (the König bound) and verifies propriety.
func TestEdgeColorRandomMultigraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		nl, nr := rng.Intn(6)+1, rng.Intn(6)+1
		g := matching.Graph{NumLeft: nl, NumRight: nr}
		for e := 0; e < rng.Intn(20); e++ {
			g.Edges = append(g.Edges, matching.Edge{Left: rng.Intn(nl), Right: rng.Intn(nr)})
		}
		d := g.MaxDegree()
		if d == 0 {
			continue
		}
		color, err := EdgeColor(g, d)
		if err != nil {
			t.Fatalf("trial %d: %v (graph %+v)", trial, err, g)
		}
		if err := Verify(g, color, d); err != nil {
			t.Fatalf("trial %d: %v (graph %+v, colors %v)", trial, err, g, color)
		}
	}
}

func TestVerifyRejectsBadColorings(t *testing.T) {
	g := bg(2, 2, 0, 0, 0, 1)
	if err := Verify(g, []int{0, 0}, 2); err == nil {
		t.Error("shared left endpoint color accepted")
	}
	g2 := bg(2, 1, 0, 0, 1, 0)
	if err := Verify(g2, []int{1, 1}, 2); err == nil {
		t.Error("shared right endpoint color accepted")
	}
	if err := Verify(g, []int{0}, 2); err == nil {
		t.Error("short coloring accepted")
	}
	if err := Verify(g, []int{0, 5}, 2); err == nil {
		t.Error("out-of-range color accepted")
	}
	if err := Verify(g, []int{0, 1}, 2); err != nil {
		t.Errorf("valid coloring rejected: %v", err)
	}
}

func TestClassSizes(t *testing.T) {
	sizes := ClassSizes([]int{0, 1, 1, 2, -1}, 3)
	want := []int{1, 2, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("ClassSizes[%d] = %d, want %d", i, sizes[i], want[i])
		}
	}
}

// TestColoringYieldsLinkDisjointRouting checks the correspondence used by
// Lemma 5.2: color classes of a degree-≤n multigraph on ToR switches have
// at most one edge per (node, color), i.e. assigning color classes to
// middle switches puts at most one matched flow on each fabric link.
func TestColoringYieldsLinkDisjointRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 4 // middle switches
	for trial := 0; trial < 50; trial++ {
		// Random multigraph on 2n x 2n ToR switches with degree ≤ n.
		g := matching.Graph{NumLeft: 2 * n, NumRight: 2 * n}
		degL := make([]int, 2*n)
		degR := make([]int, 2*n)
		for e := 0; e < 3*n; e++ {
			l, r := rng.Intn(2*n), rng.Intn(2*n)
			if degL[l] >= n || degR[r] >= n {
				continue
			}
			degL[l]++
			degR[r]++
			g.Edges = append(g.Edges, matching.Edge{Left: l, Right: r})
		}
		color, err := EdgeColor(g, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, color, n); err != nil {
			t.Fatal(err)
		}
	}
}
