package coloring

import (
	"testing"

	"closnet/internal/matching"
)

// FuzzEdgeColor decodes arbitrary bytes as bipartite multigraphs and
// checks that König's bound always suffices and the coloring is proper.
func FuzzEdgeColor(f *testing.F) {
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 1, 1, 0, 1, 1})
	f.Add([]byte{3, 3, 3, 3, 3, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		g := matching.Graph{NumLeft: 6, NumRight: 6}
		for i := 0; i+1 < len(data) && len(g.Edges) < 40; i += 2 {
			g.Edges = append(g.Edges, matching.Edge{
				Left:  int(data[i] % 6),
				Right: int(data[i+1] % 6),
			})
		}
		d := g.MaxDegree()
		if d == 0 {
			return
		}
		color, err := EdgeColor(g, d)
		if err != nil {
			t.Fatalf("EdgeColor with Δ=%d colors: %v", d, err)
		}
		if err := Verify(g, color, d); err != nil {
			t.Fatalf("improper coloring: %v", err)
		}
	})
}
