package closnet

// The benchmark harness regenerates every table and figure of the paper
// (one Benchmark per experiment ID of DESIGN.md's index) and quantifies
// the design choices called out in DESIGN.md §5 as ablations:
// exact-vs-float water-filling, Hopcroft–Karp vs greedy matching, and
// symmetry reduction in the routing-space search.
//
// Run with: go test -bench=. -benchmem

import (
	"context"

	"math/rand"
	"testing"

	"closnet/internal/coloring"
	"closnet/internal/core"
	"closnet/internal/doom"
	"closnet/internal/experiments"
	"closnet/internal/matching"
	"closnet/internal/search"
	"closnet/internal/topology"
	"closnet/internal/workload"
)

// benchExperiment runs one experiment per iteration and fails the bench
// if the experiment errors.
func benchExperiment(b *testing.B, run func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkExpF1(b *testing.B) { benchExperiment(b, experiments.RunF1) }

func BenchmarkExpF2(b *testing.B) { benchExperiment(b, experiments.RunF2) }

func BenchmarkExpT1(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunT1([]int{1, 2, 4, 8}, []int{1, 2, 4, 8, 16, 32, 64})
	})
}

func BenchmarkExpF3(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunF3([]int{3, 4, 5})
	})
}

func BenchmarkExpT2(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunT2([]int{3, 4, 5, 6, 7, 8}, 4)
	})
}

func BenchmarkExpF4(b *testing.B) { benchExperiment(b, experiments.RunF4) }

func BenchmarkExpT3(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunT3([]int{3, 5, 7, 9, 11, 15}, []int{1, 4, 16, 64})
	})
}

func BenchmarkExpS1(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunS1(experiments.DefaultSimConfig())
	})
}

func BenchmarkExpS1b(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunS1Adversarial([]int{3, 4, 5, 6}, 1)
	})
}

func BenchmarkExpP1(b *testing.B) { benchExperiment(b, experiments.RunP1) }

func BenchmarkExpE1(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunE1([]int{1, 2, 4, 8, 16, 32, 64})
	})
}

func BenchmarkExpR1(b *testing.B) { benchExperiment(b, experiments.RunR1) }

func BenchmarkExpM1(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunM1([]int{3, 4}, 5, 1)
	})
}

// --- Ablation: exact vs float water-filling -------------------------------

// waterfillInstance builds a fixed mid-sized instance: a permutation
// workload on C_4 routed by ECMP.
func waterfillInstance(b *testing.B) (*topology.Clos, core.Collection, core.Routing) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	c := topology.MustClos(4)
	ms := topology.MustMacroSwitch(4)
	pair, err := workload.Uniform(rng, c, ms, 64)
	if err != nil {
		b.Fatal(err)
	}
	ma := make(core.MiddleAssignment, len(pair.Clos))
	for i := range ma {
		ma[i] = rng.Intn(4) + 1
	}
	r, err := core.ClosRouting(c, pair.Clos, ma)
	if err != nil {
		b.Fatal(err)
	}
	return c, pair.Clos, r
}

func BenchmarkWaterfillExact(b *testing.B) {
	c, fs, r := waterfillInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MaxMinFair(c.Network(), fs, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaterfillFloat(b *testing.B) {
	c, fs, r := waterfillInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MaxMinFairFloat(c.Network(), fs, r); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: Hopcroft–Karp vs greedy matching ---------------------------

func matchingInstance() matching.Graph {
	rng := rand.New(rand.NewSource(2))
	g := matching.Graph{NumLeft: 128, NumRight: 128}
	for e := 0; e < 1024; e++ {
		g.Edges = append(g.Edges, matching.Edge{Left: rng.Intn(128), Right: rng.Intn(128)})
	}
	return g
}

func BenchmarkMatchingHopcroftKarp(b *testing.B) {
	g := matchingInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matching.MaxMatching(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchingGreedy(b *testing.B) {
	g := matchingInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matching.GreedyMatching(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: Rat64 kernel vs big.Rat per-state evaluation ----------------

// evaluatorBench measures one max-min fair evaluation per iteration on a
// contended C_4 instance, cycling through a fixed set of assignments so
// the scratch reuse is exercised.
func evaluatorBench(b *testing.B, forceBig bool) {
	c, fs := enumInstance(b, 4, 8)
	ev, err := core.NewEvaluator(c, fs)
	if err != nil {
		b.Fatal(err)
	}
	ev.ForceBig(forceBig)
	rng := rand.New(rand.NewSource(3))
	mas := make([]core.MiddleAssignment, 64)
	for i := range mas {
		mas[i] = make(core.MiddleAssignment, len(fs))
		for fi := range mas[i] {
			mas[i][fi] = 1 + rng.Intn(c.Size())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(mas[i%len(mas)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluator is the per-state hot path of the routing-space
// search on the small-word Rat64 kernel.
func BenchmarkEvaluator(b *testing.B) { evaluatorBench(b, false) }

// BenchmarkEvaluatorBigRat pins the same evaluation to the *big.Rat
// promotion path, quantifying what the Rat64 kernel saves.
func BenchmarkEvaluatorBigRat(b *testing.B) { evaluatorBench(b, true) }

// BenchmarkEvaluatorBlock batches the same assignments through the SoA
// block water filling (core.BlockEvaluator) 32 states at a time — the
// search engine's default evaluation unit. ns/op is per state, directly
// comparable to BenchmarkEvaluator.
func BenchmarkEvaluatorBlock(b *testing.B) {
	c, fs := enumInstance(b, 4, 8)
	bev, err := core.NewBlockEvaluator(c, fs)
	if err != nil {
		b.Fatal(err)
	}
	const block = 32
	rng := rand.New(rand.NewSource(3))
	mas := make([]int, block*len(fs))
	for i := range mas {
		mas[i] = 1 + rng.Intn(c.Size())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += block {
		if _, err := bev.EvalBlock(mas, block); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: symmetry canonicalization in exhaustive lex search ---------

func searchInstance(b *testing.B) (*topology.Clos, core.Collection) {
	b.Helper()
	in, err := Example23()
	if err != nil {
		b.Fatal(err)
	}
	return in.Clos, in.Flows
}

// BenchmarkLexSearchFull scans all n^|F| assignments of Example 2.3.
func BenchmarkLexSearchFull(b *testing.B) {
	c, fs := searchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.LexMaxMin(c, fs, search.Options{FullSpace: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLexSearchCanonical is the default symmetry-canonical
// enumeration (one representative per middle-relabeling orbit) on the
// same instance — bit-identical result, fewer states.
func BenchmarkLexSearchCanonical(b *testing.B) {
	c, fs := searchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.LexMaxMin(c, fs, search.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serial vs parallel routing-space search -------------------------------

// enumInstance builds a contended collection of the given size on C_n:
// flows alternate between a cyclic permutation and loopback pairs so the
// water filling has several freeze rounds per assignment.
func enumInstance(b *testing.B, n, flows int) (*topology.Clos, core.Collection) {
	b.Helper()
	c := topology.MustClos(n)
	fs := core.Collection{}
	for f := 0; f < flows; f++ {
		i := f%n + 1
		if f%2 == 0 {
			fs = fs.Add(c.Source(i, 1), c.Dest(i%n+1, 1), 1)
		} else {
			fs = fs.Add(c.Source(i, 1), c.Dest(i, 1), 1)
		}
	}
	return c, fs
}

func benchLexWorkers(b *testing.B, n, flows, workers int) {
	c, fs := enumInstance(b, n, flows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.LexMaxMin(c, fs, search.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLexSearchC3Serial(b *testing.B) { benchLexWorkers(b, 3, 7, 1) }

func BenchmarkLexSearchC3Workers4(b *testing.B) { benchLexWorkers(b, 3, 7, 4) }

func BenchmarkLexSearchC4Serial(b *testing.B) { benchLexWorkers(b, 4, 5, 1) }

func BenchmarkLexSearchC4Workers4(b *testing.B) { benchLexWorkers(b, 4, 5, 4) }

func benchThroughputWorkers(b *testing.B, n, flows, workers int) {
	c, fs := enumInstance(b, n, flows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.ThroughputMaxMin(c, fs, search.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThroughputSearchC3Serial(b *testing.B) { benchThroughputWorkers(b, 3, 7, 1) }

func BenchmarkThroughputSearchC3Workers4(b *testing.B) { benchThroughputWorkers(b, 3, 7, 4) }

// --- Component benchmarks --------------------------------------------------

func BenchmarkDoomSwitch(b *testing.B) {
	in, err := Theorem54(15, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DoomSwitch(in.Clos, in.Flows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgeColorK32(b *testing.B) {
	n := 32
	g := matching.Graph{NumLeft: n, NumRight: n}
	for l := 0; l < n; l++ {
		for r := 0; r < n; r++ {
			g.Edges = append(g.Edges, matching.Edge{Left: l, Right: r})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coloring.EdgeColor(g, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeasibilityRefuterT42(b *testing.B) {
	in, err := Theorem42(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := FeasibleRouting(context.Background(), in.Clos, in.Flows, in.MacroRates, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			b.Fatal("instance unexpectedly routable")
		}
	}
}

func BenchmarkWaterfillTheorem43N8(b *testing.B) {
	in, err := Theorem43(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ClosMaxMinFair(in.Clos, in.Flows, in.Witness); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: Doom-Switch victim policy -----------------------------------

func benchDoomPolicy(b *testing.B, policy doom.VictimPolicy) {
	in, err := Theorem54(15, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := doom.RouteWithPolicy(in.Clos, in.Flows, policy)
		if err != nil {
			b.Fatal(err)
		}
		a, err := ClosMaxMinFair(in.Clos, in.Flows, res.Assignment)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			f, _ := Throughput(a).Float64()
			b.ReportMetric(f, "throughput")
		}
	}
}

func BenchmarkDoomPolicyLeastLoaded(b *testing.B) { benchDoomPolicy(b, doom.LeastLoaded()) }

func BenchmarkDoomPolicyMostLoaded(b *testing.B) { benchDoomPolicy(b, doom.MostLoaded()) }

func BenchmarkExpD1(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunD1(experiments.DynConfig{
			Size: 3, Loads: []float64{0.6}, MeanSize: 1, NumFlows: 200, Seed: 1,
		})
	})
}

func BenchmarkExpS2(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunS2(experiments.SimConfig{Sizes: []int{4}, FlowsPerServerPair: 2, Trials: 5, Seed: 1})
	})
}

func BenchmarkExpO1(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunO1(6, 3, []int{1, 2, 3, 4, 5, 6}, 5, 1)
	})
}

func BenchmarkExpA1(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.RunA1([]int{2, 3}, 8, 10, 1)
	})
}
