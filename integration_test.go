package closnet

// Integration tests exercise complete pipelines across modules: workload
// generation → routing → congestion control → comparison against the
// macro-switch abstraction, plus the save/replay loop through the codec.

import (
	"context"

	"math/rand"
	"testing"

	"closnet/internal/codec"
	"closnet/internal/core"
	"closnet/internal/rational"
	"closnet/internal/routing"
	"closnet/internal/topology"
	"closnet/internal/workload"
)

// TestPipelineStochasticRouting mirrors experiment S1 end to end with
// the exact allocator: generate a workload, compute macro rates, route
// with every baseline algorithm, water-fill, and check the fundamental
// inequalities tie together.
func TestPipelineStochasticRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	c := topology.MustClos(3)
	ms := topology.MustMacroSwitch(3)
	pair, err := workload.Uniform(rng, c, ms, 24)
	if err != nil {
		t.Fatal(err)
	}
	macro, err := core.MacroMaxMinFair(ms, pair.Macro)
	if err != nil {
		t.Fatal(err)
	}
	demands := make([]float64, len(macro))
	for i, r := range macro {
		demands[i] = rational.Float(r)
	}
	for _, alg := range routing.All() {
		t.Run(alg.Name, func(t *testing.T) {
			ma, err := alg.Route(c, pair.Clos, demands, rng)
			if err != nil {
				t.Fatal(err)
			}
			a, err := core.ClosMaxMinFair(c, pair.Clos, ma)
			if err != nil {
				t.Fatal(err)
			}
			// Every Clos allocation is feasible in the macro-switch, so
			// its sorted vector is lex-dominated by the macro optimum
			// (§2.3).
			if rational.LexCompareSorted(a, macro) > 0 {
				t.Error("Clos allocation lex-above the macro optimum")
			}
			// Theorem 5.4's ceiling applies to any routing's throughput.
			bound := rational.Mul(rational.Int(2), core.Throughput(macro))
			if core.Throughput(a).Cmp(bound) > 0 {
				t.Error("throughput above 2x the macro max-min throughput")
			}
			// And the allocation engine agrees with itself.
			r, err := core.ClosRouting(c, pair.Clos, ma)
			if err != nil {
				t.Fatal(err)
			}
			if err := core.IsMaxMinFair(c.Network(), pair.Clos, r, a); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestPipelineDoomVsSearch: on a small instance, the Doom-Switch routing
// is compared against the exhaustive throughput-max-min optimum — the
// algorithm is an approximation and must never exceed it.
func TestPipelineDoomVsSearch(t *testing.T) {
	in, err := Example23()
	if err != nil {
		t.Fatal(err)
	}
	res, err := DoomSwitch(in.Clos, in.Flows)
	if err != nil {
		t.Fatal(err)
	}
	doomAlloc, err := ClosMaxMinFair(in.Clos, in.Flows, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ThroughputMaxMin(in.Clos, in.Flows, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if Throughput(doomAlloc).Cmp(Throughput(opt.Allocation)) > 0 {
		t.Errorf("doom throughput %v exceeds the exhaustive optimum %v",
			Throughput(doomAlloc), Throughput(opt.Allocation))
	}
}

// TestPipelineScenarioReplay: adversarial instance → JSON → rebuild →
// identical allocation, crossing codec, topology, core and adversary.
func TestPipelineScenarioReplay(t *testing.T) {
	in, err := Theorem54(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := codec.FromInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	data, err := codec.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	c, fs, _, ma, err := back.Build()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := core.ClosMaxMinFair(c, fs, ma)
	if err != nil {
		t.Fatal(err)
	}
	original, err := ClosMaxMinFair(in.Clos, in.Flows, in.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt.Equal(original) {
		t.Error("replayed scenario produced a different allocation")
	}
}

// TestPipelineSchedulingConsistency: the static scheduler (exact) and
// the public facade agree on the Theorem 3.4 family.
func TestPipelineSchedulingConsistency(t *testing.T) {
	in, err := Theorem34(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := make(Routing, len(in.MacroFlows))
	for fi, f := range in.MacroFlows {
		p, err := in.Macro.Path(f.Src, f.Dst)
		if err != nil {
			t.Fatal(err)
		}
		r[fi] = p
	}
	sizes := make(Vec, len(in.MacroFlows))
	for i := range sizes {
		sizes[i] = R(1, 1)
	}
	fair, err := FairSharingFCT(in.Macro.Network(), in.MacroFlows, r, sizes)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := MatchingScheduleFCT(in.MacroFlows, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if AverageFCT(sched).Cmp(AverageFCT(fair)) >= 0 {
		t.Error("scheduler not faster on average")
	}
}

// TestPipelineRelativeFairnessAndMinMiddles: the facade's relative
// fairness and rearrangeability probes compose with the adversarial
// instances.
func TestPipelineRelativeFairnessAndMinMiddles(t *testing.T) {
	in, err := Example23()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := RelativeMaxMin(in.Clos, in.Flows, in.MacroRates, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.MinRatio.Cmp(R(3, 4)) != 0 {
		t.Errorf("relative optimum = %v, want 3/4", rel.MinRatio)
	}
	t42, err := Theorem42(3)
	if err != nil {
		t.Fatal(err)
	}
	m, ok, err := MinMiddlesToRoute(context.Background(), t42.Clos, t42.Flows, t42.MacroRates, 6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || m != 4 {
		t.Errorf("min middles = %d (ok=%v), want 4", m, ok)
	}
}
