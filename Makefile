# Developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet race bench bench-json bench-block bench-delta verify experiments trace serve loadgen cover fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel routing-space search under the race detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Persist the search/evaluator perf numbers as a JSON artifact.
bench-json:
	$(GO) run ./cmd/closbench -o BENCH_search.json

# The block-evaluator smoke pair: C_5 per-state baseline vs the SoA
# block path, failing below the CI speedup bar.
bench-block:
	$(GO) run ./cmd/closbench -only-block -min-block-speedup 1.5

# The incremental-evaluator smoke pair: full per-event recompute vs the
# delta-aware water filling on the 64-event C_5 trace, failing below
# the CI speedup bar.
bench-delta:
	$(GO) run ./cmd/closbench -only-delta -min-delta-speedup 2

# Re-measure every theorem bound; non-zero exit on any violation.
verify:
	$(GO) run ./cmd/closverify -v

# Regenerate every figure/bound of the paper as tables.
experiments:
	$(GO) run ./cmd/closlab -all

# Run every experiment with full observability: live metrics on stderr
# and a structured JSONL journal in trace.jsonl (see internal/obs).
trace:
	$(GO) run ./cmd/closlab -all -metrics -trace trace.jsonl > /dev/null
	@wc -l < trace.jsonl | xargs -I{} echo "trace.jsonl: {} events"

# Run the scenario-evaluation daemon (see cmd/closnetd and the README
# "Serving" section). Ctrl-C drains in-flight requests before exit.
serve:
	$(GO) run ./cmd/closnetd -addr localhost:8427 -metrics

# The serving benchmark: replay the C_4 corpus against an in-process
# daemon, warm cache then cold path.
loadgen:
	$(GO) run ./cmd/closnetd loadgen -duration 5s
	$(GO) run ./cmd/closnetd loadgen -duration 5s -cold

cover:
	$(GO) test -cover ./...

# Short fuzz pass over the allocator, the edge colorer and the simplex.
fuzz:
	$(GO) test -fuzz=FuzzWaterfill -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzEdgeColor -fuzztime=10s ./internal/coloring/
	$(GO) test -fuzz=FuzzSimplex -fuzztime=10s ./internal/lp/
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s ./internal/codec/

clean:
	$(GO) clean ./...
	rm -rf internal/*/testdata/fuzz
