module closnet

go 1.22
